package abd_test

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	abd "repro"
	"repro/internal/core"
	"repro/internal/quorum"
)

// The canonical flow: a five-replica cluster tolerates two crashes and
// blocks — as the theory requires — once a third replica dies.
func Example() {
	cluster, err := abd.NewCluster(5, abd.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	client := cluster.Client()
	if err := client.Write(ctx, "greeting", []byte("hello")); err != nil {
		log.Fatal(err)
	}

	cluster.Crash(0)
	cluster.Crash(3)
	v, err := client.Read(ctx, "greeting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 2 crashes: %s\n", v)

	cluster.Crash(1) // majority gone
	short, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	_, err = client.Read(short, "greeting")
	fmt.Println("after 3 crashes, read blocked:", errors.Is(err, abd.ErrNoQuorum))
	// Output:
	// after 2 crashes: hello
	// after 3 crashes, read blocked: true
}

// Register handles bind a client to one named register and satisfy the
// abd.Register interface used by the shared-memory algorithm packages.
func ExampleRegister() {
	cluster, err := abd.NewCluster(3, abd.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	var reg abd.Register = cluster.Client().Register("counter")
	if err := reg.Write(ctx, []byte("42")); err != nil {
		log.Fatal(err)
	}
	v, err := reg.Read(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", v)
	// Output: 42
}

// The single-writer fast path writes in one round trip; the unanimous-read
// optimization brings quiescent reads down to one round trip too.
func ExampleWithSingleWriter() {
	cluster, err := abd.NewCluster(5, abd.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	// SWMR: local sequence numbers, no query phase.
	w := cluster.Client(abd.WithSingleWriter())
	for i := 0; i < 3; i++ {
		if err := w.Write(ctx, "log", []byte{byte(i)}); err != nil {
			log.Fatal(err)
		}
	}
	m := w.Metrics()
	fmt.Printf("writes=%d phases=%d\n", m.Writes, m.Phases)
	// Output: writes=3 phases=3
}

// Any quorum system from internal/quorum can replace majorities — here a
// 2x3 grid, the published generalization of the paper's construction.
func ExampleWithQuorumSystem() {
	cluster, err := abd.NewCluster(6, abd.WithSeed(1),
		abd.WithQuorumSystem(quorum.NewGrid(2, 3)))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	client := cluster.Client()
	if err := client.Write(ctx, "x", []byte("on-a-grid")); err != nil {
		log.Fatal(err)
	}
	v, err := client.Read(ctx, "x")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", v)
	// Output: on-a-grid
}

// Per-client protocol options compose with cluster defaults.
func ExampleWithClientDefaults() {
	cluster, err := abd.NewCluster(3, abd.WithSeed(1),
		abd.WithClientDefaults(core.WithSkipUnanimousWriteBack()))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	w := cluster.Client(abd.WithSingleWriter())
	if err := w.Write(ctx, "x", []byte("v")); err != nil {
		log.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let all replicas adopt

	r := cluster.Client()
	if _, err := r.Read(ctx, "x"); err != nil {
		log.Fatal(err)
	}
	m := r.Metrics()
	fmt.Printf("reads=%d write-backs skipped=%d\n", m.Reads, m.WriteBacksSkipped)
	// Output: reads=1 write-backs skipped=1
}
