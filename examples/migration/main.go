// migration: replace the entire replica group while reads and writes keep
// flowing — the RAMBO-style reconfiguration extension. An old 3-node group
// is migrated to a new 5-node group; during the migration every operation
// spans both groups, so atomicity never lapses; afterwards the old group is
// shut down for good.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/reconfig"
	"repro/internal/types"
)

func main() {
	net := netsim.New(netsim.Config{Seed: 21, MinDelay: 50 * time.Microsecond, MaxDelay: 200 * time.Microsecond})
	defer net.Close()

	startGroup := func(ids []types.NodeID) []*core.Replica {
		out := make([]*core.Replica, len(ids))
		for i, id := range ids {
			out[i] = core.NewReplica(id, net.Node(id))
			out[i].Start()
		}
		return out
	}
	oldIDs := []types.NodeID{0, 1, 2}
	newIDs := []types.NodeID{10, 11, 12, 13, 14}
	oldReplicas := startGroup(oldIDs)
	defer func() {
		for _, r := range oldReplicas {
			r.Stop()
		}
	}()

	mkCore := func(id types.NodeID, group []types.NodeID) *core.Client {
		cli, err := core.NewClient(id, net.Node(id), group)
		if err != nil {
			log.Fatal(err)
		}
		return cli
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	cli, err := reconfig.NewClient(500, reconfig.Member{Epoch: 1, Client: mkCore(500, oldIDs)})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	regs := []string{"users", "orders", "config"}
	for _, reg := range regs {
		if err := cli.Write(ctx, reg, []byte("v1-"+reg)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("epoch 1 (3 replicas): wrote %d registers\n", len(regs))

	// Background workload that never stops during the migration.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var opCount int
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := cli.Write(ctx, "orders", []byte(fmt.Sprintf("order-%d", i))); err != nil {
				log.Printf("background write: %v", err)
				return
			}
			if _, err := cli.Read(ctx, "users"); err != nil {
				log.Printf("background read: %v", err)
				return
			}
			opCount = i + 1
		}
	}()

	// Bring up the new group and migrate.
	newReplicas := startGroup(newIDs)
	defer func() {
		for _, r := range newReplicas {
			r.Stop()
		}
	}()
	if err := cli.AddConfig(reconfig.Member{Epoch: 2, Client: mkCore(501, newIDs)}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("epoch 2 activated: operations now span both groups")
	time.Sleep(5 * time.Millisecond) // let some dual-config traffic through

	if err := cli.Transfer(ctx, regs); err != nil {
		log.Fatal(err)
	}
	// Drain the workload before retiring the old configuration, as a real
	// deployment would (in-flight operations may still span both groups).
	close(stop)
	wg.Wait()
	if err := cli.RemoveConfig(1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("state transferred; epoch 1 retired")

	// The old group is now irrelevant: crash it entirely.
	for _, id := range oldIDs {
		net.Crash(id)
	}
	fmt.Printf("background workload ran %d op pairs across the migration\n", opCount)

	for _, reg := range regs {
		v, err := cli.Read(ctx, reg)
		if err != nil {
			log.Fatalf("read %s on the new group alone: %v", reg, err)
		}
		fmt.Printf("%s = %s (served by the 5-node group)\n", reg, v)
	}
}
