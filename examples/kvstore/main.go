// kvstore: a replicated, linearizable key-value store built directly on the
// emulated multi-writer registers — the ABD construction "at the heart of
// many distributed storage systems", in miniature. Each key is one MWMR
// register; any client can Put or Get any key; the store survives any
// minority of replica crashes.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
)

// KV is a replicated key-value store on top of an ABD client.
type KV struct {
	client *abd.Client
	prefix string
}

// NewKV namespaces keys under prefix so several stores share one cluster.
func NewKV(client *abd.Client, prefix string) *KV {
	return &KV{client: client, prefix: prefix}
}

// Put stores value under key, surviving any minority of replica crashes.
func (kv *KV) Put(ctx context.Context, key, value string) error {
	return kv.client.Write(ctx, kv.prefix+"/"+key, []byte(value))
}

// Get returns the value and whether the key was ever written.
func (kv *KV) Get(ctx context.Context, key string) (string, bool, error) {
	v, err := kv.client.Read(ctx, kv.prefix+"/"+key)
	if err != nil {
		return "", false, err
	}
	if v == nil {
		return "", false, nil
	}
	return string(v), true, nil
}

func main() {
	cluster, err := abd.NewCluster(5, abd.WithSeed(7), abd.WithDelays(100*time.Microsecond, 500*time.Microsecond))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Three independent clients of the same store (e.g. three app servers).
	stores := []*KV{
		NewKV(cluster.Client(), "users"),
		NewKV(cluster.Client(), "users"),
		NewKV(cluster.Client(), "users"),
	}

	if err := stores[0].Put(ctx, "alice", "alice@example.com"); err != nil {
		log.Fatal(err)
	}
	if v, ok, err := stores[1].Get(ctx, "alice"); err != nil || !ok {
		log.Fatalf("get alice: %q %v %v", v, ok, err)
	} else {
		fmt.Printf("client 1 sees alice = %s\n", v)
	}

	// Concurrent writers on distinct keys, with a crash mid-flight.
	var wg sync.WaitGroup
	for i, kv := range stores {
		wg.Add(1)
		go func(i int, kv *KV) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				key := fmt.Sprintf("user-%d", j%5)
				if err := kv.Put(ctx, key, fmt.Sprintf("v%d-by-%d", j, i)); err != nil {
					log.Printf("put: %v", err)
					return
				}
			}
		}(i, kv)
	}
	time.Sleep(2 * time.Millisecond)
	cluster.Crash(2) // one replica dies mid-workload
	wg.Wait()
	fmt.Println("60 concurrent puts completed across a replica crash")

	// Everyone agrees on the final state.
	for j := 0; j < 5; j++ {
		key := fmt.Sprintf("user-%d", j)
		v0, _, err := stores[0].Get(ctx, key)
		if err != nil {
			log.Fatal(err)
		}
		v2, _, err := stores[2].Get(ctx, key)
		if err != nil {
			log.Fatal(err)
		}
		if v0 != v2 {
			log.Fatalf("clients disagree on %s: %q vs %q", key, v0, v2)
		}
		fmt.Printf("%s = %s (all clients agree)\n", key, v0)
	}

	if _, ok, err := stores[0].Get(ctx, "missing"); err != nil || ok {
		log.Fatalf("missing key: ok=%v err=%v", ok, err)
	}
	fmt.Println("missing key correctly absent")
}
