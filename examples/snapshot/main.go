// snapshot: the atomic snapshot object — a wait-free shared-memory
// algorithm — running unchanged over the message-passing emulation. Three
// updaters bump their components concurrently while a scanner takes
// consistent global views; a replica crash mid-run changes nothing.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
	"repro/internal/snapshot"
)

func main() {
	cluster, err := abd.NewCluster(5, abd.WithSeed(3), abd.WithDelays(50*time.Microsecond, 200*time.Microsecond))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// One SWMR register per component, each owned by its updater's client.
	const components = 3
	regs := make([]snapshot.Register, components)
	for i := range regs {
		regs[i] = cluster.Client(abd.WithSingleWriter()).Register(fmt.Sprintf("snap/%d", i))
	}

	// Concurrent updaters.
	var wg sync.WaitGroup
	for i := 0; i < components; i++ {
		h, err := snapshot.New(regs, i)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(i int, h *snapshot.Snapshot) {
			defer wg.Done()
			for j := 1; j <= 8; j++ {
				if err := h.Update(ctx, []byte(fmt.Sprintf("p%d:step%d", i, j))); err != nil {
					log.Printf("update: %v", err)
					return
				}
			}
		}(i, h)
	}

	// A scanner watches global state evolve, across a replica crash.
	scanner, err := snapshot.New(regs, 0)
	if err != nil {
		log.Fatal(err)
	}
	crashed := false
	for k := 0; k < 6; k++ {
		view, err := scanner.Scan(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scan %d: %s\n", k, renderView(view))
		if k == 2 && !crashed {
			cluster.Crash(1)
			cluster.Crash(4)
			crashed = true
			fmt.Println("  (crashed replicas 1 and 4 — scans and updates continue)")
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()

	final, err := scanner.Scan(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final: %s\n", renderView(final))
}

func renderView(view [][]byte) string {
	out := "["
	for i, v := range view {
		if i > 0 {
			out += ", "
		}
		if v == nil {
			out += "∅"
		} else {
			out += string(v)
		}
	}
	return out + "]"
}
