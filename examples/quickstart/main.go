// Quickstart: emulate atomic registers on a 5-processor message-passing
// cluster, then crash a minority and keep going — the paper's headline
// guarantee, in a dozen lines of client code.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// Five replicas: tolerates any 2 crashes (f < n/2).
	cluster, err := abd.NewCluster(5, abd.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	client := cluster.Client()
	if err := client.Write(ctx, "greeting", []byte("hello, robust shared memory")); err != nil {
		log.Fatal(err)
	}
	v, err := client.Read(ctx, "greeting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read: %s\n", v)

	// Crash two of five replicas — a minority. Everything keeps working.
	cluster.Crash(0)
	cluster.Crash(3)
	fmt.Println("crashed replicas 0 and 3 (f=2, n=5)")

	if err := client.Write(ctx, "greeting", []byte("still here after 2 crashes")); err != nil {
		log.Fatal(err)
	}
	v, err = client.Read(ctx, "greeting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read: %s\n", v)

	// Crash one more — now a majority is gone and the paper's impossibility
	// result bites: operations cannot terminate.
	cluster.Crash(1)
	fmt.Println("crashed replica 1 (f=3 >= n/2: majority lost)")
	shortCtx, cancelShort := context.WithTimeout(ctx, 300*time.Millisecond)
	defer cancelShort()
	_, err = client.Read(shortCtx, "greeting")
	if errors.Is(err, abd.ErrNoQuorum) {
		fmt.Println("read blocked as the theory demands: no quorum")
	} else {
		log.Fatalf("expected ErrNoQuorum, got %v", err)
	}
}
