// bakery: Lamport's bakery mutual exclusion running over the emulated
// registers — distributed locking with no lock server. Four processes
// increment a shared counter under the lock; the final count proves no
// update was lost, even with a replica crash in the middle.
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"sync"
	"time"

	"repro"
	"repro/internal/bakery"
)

func main() {
	cluster, err := abd.NewCluster(5, abd.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const procs = 4
	const rounds = 5

	choosing := make([]bakery.Register, procs)
	number := make([]bakery.Register, procs)
	for i := 0; i < procs; i++ {
		w := cluster.Client(abd.WithSingleWriter())
		choosing[i] = w.Register(fmt.Sprintf("choosing/%d", i))
		number[i] = w.Register(fmt.Sprintf("number/%d", i))
	}
	// The protected resource: a shared register, read-modify-written only
	// inside the critical section.
	counterClient := cluster.Client()

	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		m, err := bakery.New(choosing, number, i, bakery.WithPollInterval(300*time.Microsecond))
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(i int, m *bakery.Mutex) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := m.Lock(ctx); err != nil {
					log.Printf("p%d lock: %v", i, err)
					return
				}
				// Critical section: read-modify-write, safe only under the
				// lock (a register is not a fetch-and-add).
				raw, err := counterClient.Read(ctx, "counter")
				if err != nil {
					log.Printf("p%d read: %v", i, err)
					return
				}
				cur := 0
				if raw != nil {
					cur, _ = strconv.Atoi(string(raw))
				}
				if err := counterClient.Write(ctx, "counter", []byte(strconv.Itoa(cur+1))); err != nil {
					log.Printf("p%d write: %v", i, err)
					return
				}
				if err := m.Unlock(ctx); err != nil {
					log.Printf("p%d unlock: %v", i, err)
					return
				}
			}
			fmt.Printf("process %d finished %d lock/increment/unlock rounds\n", i, rounds)
		}(i, m)
	}

	// Crash a replica while the locks churn.
	time.Sleep(5 * time.Millisecond)
	cluster.Crash(2)
	fmt.Println("(crashed replica 2 mid-run)")

	wg.Wait()

	raw, err := counterClient.Read(ctx, "counter")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final counter: %s (want %d — no lost updates means mutual exclusion held)\n",
		raw, procs*rounds)
	if string(raw) != strconv.Itoa(procs*rounds) {
		log.Fatal("counter mismatch: mutual exclusion violated")
	}
}
