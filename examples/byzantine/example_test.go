package main

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// The honest values must win against every lying strategy once clients run
// with WithByzantine(1) — zero corrupted reads across all four ByzModes.
func TestValidatedReadsDefeatEveryMode(t *testing.T) {
	for _, m := range []struct {
		mode core.ByzMode
		name string
	}{
		{core.ByzFabricate, "fabricate"},
		{core.ByzStale, "stale"},
		{core.ByzSilent, "silent"},
		{core.ByzEquivocate, "equivocate"},
	} {
		m := m
		t.Run(m.name, func(t *testing.T) {
			t.Parallel()
			corrupted, err := runReads(m.mode, core.WithByzantine(1))
			if err != nil {
				t.Fatal(err)
			}
			if corrupted != 0 {
				t.Fatalf("mode %s: %d/%d reads corrupted despite WithByzantine(1)",
					m.name, corrupted, readsPerRun)
			}
		})
	}
}

// The demo's premise: without validation the fabricating replica really
// does corrupt plain-majority reads, so the defense above is defending
// against a live attack rather than a no-op.
func TestPlainMajorityIsCorrupted(t *testing.T) {
	corrupted, err := runReads(core.ByzFabricate)
	if err != nil {
		t.Fatal(err)
	}
	if corrupted == 0 {
		t.Fatalf("fabricating replica never corrupted a plain-majority read in %d tries; attack setup is broken", readsPerRun)
	}
}

// Example-style sanity check that the printed verdict lines are what the
// README promises: validated reads report 0 corrupted.
func TestVerdictLine(t *testing.T) {
	corrupted, err := runReads(core.ByzFabricate, core.WithByzantine(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("corrupted reads: %d/%d", corrupted, readsPerRun); got != fmt.Sprintf("corrupted reads: 0/%d", readsPerRun) {
		t.Fatalf("verdict %q, want 0 corrupted", got)
	}
}
