// byzantine: one replica of five actively lies — and WithByzantine(1), the
// protocol's first-class Byzantine mode, defeats every lying strategy the
// adversary has. The demo first shows the attack working: a fabricating
// replica advertises an enormous timestamp and plain majority quorums
// believe it. Then the same workload runs with validated reads against all
// four ByzModes — fabricate, stale, silent, equivocate — and every read
// returns what the writer actually wrote. Under the hood WithByzantine(f)
// switches the client to masking quorums (Malkhi–Reiter, n >= 4f+1) and
// only adopts a (timestamp, value) pair reported identically by f+1
// replicas, an echo f liars can never forge; a pair claiming to be ahead of
// the vouched state gets exactly one confirm round before it is discarded
// as a lie.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/types"
)

func main() {
	// The attack: plain majority quorums (no validation) trust whichever
	// reply carries the max timestamp — the fabricating replica wins.
	corrupted, err := runReads(core.ByzFabricate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s corrupted reads: %v\n", "plain majority vs fabricate:", corrupted > 0)

	// The defense: the same workload, same adversary budget, but clients
	// built with WithByzantine(1). All four lying strategies lose.
	for _, m := range []struct {
		mode core.ByzMode
		name string
	}{
		{core.ByzFabricate, "fabricate"},
		{core.ByzStale, "stale"},
		{core.ByzSilent, "silent"},
		{core.ByzEquivocate, "equivocate"},
	} {
		corrupted, err := runReads(m.mode, core.WithByzantine(1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("WithByzantine(1) vs %-14s corrupted reads: %d/%d\n", m.name+":", corrupted, readsPerRun)
	}
}

const readsPerRun = 20

// runReads stands up a fresh 5-replica cluster whose replica 2 lies in the
// given mode, then runs readsPerRun write/read pairs through a writer and a
// reader built with opts. It returns how many reads came back with a value
// the writer never wrote. Each run gets its own cluster: single-writer
// sequence numbers restart per client, so reusing replicas across runs
// would pit a fresh counter against the previous run's higher timestamps.
func runReads(mode core.ByzMode, opts ...core.ClientOption) (int, error) {
	net := netsim.New(netsim.Config{Seed: 33})
	defer net.Close()

	const n = 5
	ids := make([]types.NodeID, n)
	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	for i := 0; i < n; i++ {
		ids[i] = types.NodeID(i)
		if i == 2 {
			liar := core.NewByzantineReplica(ids[i], net.Node(ids[i]), mode, 1)
			liar.Start()
			stops = append(stops, liar.Stop)
			continue
		}
		r := core.NewReplica(ids[i], net.Node(ids[i]))
		r.Start()
		stops = append(stops, r.Stop)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	w, err := core.NewClient(100, net.Node(100), ids, append(opts, core.WithSingleWriter())...)
	if err != nil {
		return 0, err
	}
	defer w.Close()
	r, err := core.NewClient(101, net.Node(101), ids, opts...)
	if err != nil {
		return 0, err
	}
	defer r.Close()

	corrupted := 0
	for i := 0; i < readsPerRun; i++ {
		want := fmt.Sprintf("genuine-%d", i)
		if err := w.Write(ctx, "x", []byte(want)); err != nil {
			return 0, err
		}
		got, err := r.Read(ctx, "x")
		if err != nil {
			return 0, err
		}
		if string(got) != want {
			corrupted++
		}
	}
	return corrupted, nil
}
