// byzantine: one replica actively lies — fabricating values with enormous
// timestamps — and plain majority quorums believe it. Masking quorums
// (the Malkhi–Reiter generalization of the paper's majorities) tolerate it:
// clients only trust a (timestamp, value) pair reported identically by f+1
// replicas, which f liars can never forge.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/quorum"
	"repro/internal/types"
)

func main() {
	net := netsim.New(netsim.Config{Seed: 33})
	defer net.Close()

	// n = 5, one Byzantine replica (node 2): within the masking budget
	// n >= 4f+1 for f = 1.
	const n, f = 5, 1
	ids := make([]types.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = types.NodeID(i)
		if i == 2 {
			liar := core.NewByzantineReplica(ids[i], net.Node(ids[i]), core.ByzFabricate, 1)
			liar.Start()
			defer liar.Stop()
			continue
		}
		r := core.NewReplica(ids[i], net.Node(ids[i]))
		r.Start()
		defer r.Stop()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	nextID := types.NodeID(100)
	run := func(name string, opts ...core.ClientOption) {
		// Each run gets its own register: single-writer sequence numbers
		// restart per client, so reusing a register across runs would pit
		// a fresh counter against the previous run's higher timestamps.
		reg := "x/" + name
		wid, rid := nextID, nextID+1
		nextID += 2
		w, err := core.NewClient(wid, net.Node(wid), ids, append(opts, core.WithSingleWriter())...)
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
		r, err := core.NewClient(rid, net.Node(rid), ids, opts...)
		if err != nil {
			log.Fatal(err)
		}
		defer r.Close()

		corrupted := 0
		const reads = 20
		for i := 0; i < reads; i++ {
			want := fmt.Sprintf("genuine-%d", i)
			if err := w.Write(ctx, reg, []byte(want)); err != nil {
				log.Fatal(err)
			}
			got, err := r.Read(ctx, reg)
			if err != nil {
				log.Fatal(err)
			}
			if string(got) != want {
				corrupted++
			}
		}
		fmt.Printf("%-22s %d/%d reads corrupted by the lying replica\n", name+":", corrupted, reads)
	}

	run("plain majority")
	run("masking quorums (f=1)",
		core.WithQuorum(quorum.NewMasking(n, f)),
		core.WithMaskingFaults(f),
	)
}
