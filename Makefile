# Developer entry points. Everything is pure stdlib Go; no tool downloads.

GO ?= go

.PHONY: all build test race vet check bench eval clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The instrumentation layer (obs histograms/tracers, client/replica counters,
# netsim stats epochs) is lock-free or lock-cheap by design; keep it honest
# under the race detector. These are the packages with real concurrency.
race:
	$(GO) test -race ./internal/obs/... ./internal/core/... ./internal/netsim/... ./internal/tcpnet/... ./internal/chaos/... ./internal/nemesis/...

vet:
	$(GO) vet ./...

check: build vet test race

bench:
	$(GO) test -bench=. -benchmem

# Regenerate every evaluation table (EXPERIMENTS.md appendix).
eval:
	$(GO) run ./cmd/abd-bench -exp all -seed 1

clean:
	$(GO) clean ./...
