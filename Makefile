# Developer entry points. Everything is pure stdlib Go; no tool downloads.

GO ?= go

# Every command binary `make bin` produces under ./bin.
CMDS = abd-sim abd-node abd-cli abd-check abd-bench abd-trace abd-top abd-prof

.PHONY: all build bin test race vet check smoke bench throughput shards byz alloc fastpath eval clean

all: check

build:
	$(GO) build ./...

bin:
	$(GO) build -o bin/ $(addprefix ./cmd/,$(CMDS))

test:
	$(GO) test ./...

# The instrumentation layer (obs histograms/tracers, client/replica counters,
# netsim stats epochs) is lock-free or lock-cheap by design; keep it honest
# under the race detector. These are the packages with real concurrency.
race:
	$(GO) test -race ./internal/obs/... ./internal/core/... ./internal/netsim/... ./internal/tcpnet/... ./internal/chaos/... ./internal/nemesis/... ./internal/wire/... ./internal/shard/... ./internal/health/... ./internal/experiments/... ./internal/quorum/... ./internal/failure/... ./internal/prof/...

vet:
	$(GO) vet ./...

check: build vet test race

# Tier-2 smoke: one seeded nemesis pass on a real TCP cluster (chaos faults,
# crash+restart, linearizability check), its spans dumped as JSONL and fed
# back through abd-trace, which exits nonzero unless at least 95% of the
# replica/transport spans stitch to the client operation that caused them.
SMOKE_SPANS ?= $(if $(TMPDIR),$(TMPDIR),/tmp)/abd-smoke-spans.jsonl
smoke:
	$(GO) run ./cmd/abd-sim -nemesis -seed 7 -trace-out $(SMOKE_SPANS)
	$(GO) run ./cmd/abd-trace -min-stitch 0.95 $(SMOKE_SPANS)

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate BENCH_throughput.json: the batching-pipeline on/off comparison
# (cmd/abd-bench -exp throughput) at full duration on the canonical seed.
throughput:
	$(GO) run ./cmd/abd-bench -exp throughput -seed 1 -json BENCH_throughput.json

# Regenerate BENCH_shards.json: aggregate throughput at 1/2/3 replica groups
# behind one sharded store (cmd/abd-bench -exp shards) at full duration.
shards:
	$(GO) run ./cmd/abd-bench -exp shards -seed 1 -json BENCH_shards.json

# Regenerate BENCH_byz.json: the Byzantine validation cost sheet and
# verdicts (cmd/abd-bench -exp byz: f=0 vs f=1, honest and under attack).
byz:
	$(GO) run ./cmd/abd-bench -exp byz -seed 1 -json BENCH_byz.json

# Regenerate BENCH_alloc.json: per-phase allocation attribution plus the
# TP-workload GC picture (cmd/abd-bench -exp alloc). The phase rows use
# fixed op counts, so a -quick CI run is comparable to this full baseline
# via `abd-prof bench-diff`.
alloc:
	$(GO) run ./cmd/abd-bench -exp alloc -seed 1 -json BENCH_alloc.json

# Regenerate BENCH_fastpath.json: the confirmed-watermark fast-path read
# comparison (cmd/abd-bench -exp fastpath: two-phase vs skip-unanimous vs
# fast-path under a paced writer) at full duration on the canonical seed.
fastpath:
	$(GO) run ./cmd/abd-bench -exp fastpath -seed 1 -json BENCH_fastpath.json

# Regenerate every evaluation table (EXPERIMENTS.md appendix).
eval:
	$(GO) run ./cmd/abd-bench -exp all -seed 1

clean:
	$(GO) clean ./...
