// Package abd is a production-quality Go implementation of the ABD
// algorithm from "Sharing Memory Robustly in Message-Passing Systems"
// (Attiya, Bar-Noy, Dolev; PODC 1990 / JACM 1995): atomic (linearizable)
// read/write registers emulated over an asynchronous message-passing system
// in which any minority of processors may crash.
//
// The package is a facade over the implementation packages:
//
//   - internal/core: the replica and client protocols (single-writer,
//     multi-writer, bounded labels, generalized quorums),
//   - internal/netsim: the simulated asynchronous network with fault
//     injection,
//   - internal/tcpnet: the TCP transport for real deployments,
//   - internal/quorum, internal/timestamp: the protocol's building blocks,
//   - internal/lincheck, internal/history: linearizability verification,
//   - internal/obs: latency histograms, span tracing, and the Prometheus
//     text exposition behind cmd/abd-node's /metrics,
//   - internal/snapshot, internal/bakery, internal/maxreg: shared-memory
//     algorithms running unchanged over the emulation.
//
// Quick start (see examples/quickstart for the runnable version):
//
//	cluster, _ := abd.NewCluster(5, abd.WithSeed(1))
//	defer cluster.Close()
//	client := cluster.Client()
//	_ = client.Write(ctx, "greeting", []byte("hello"))
//	v, _ := client.Read(ctx, "greeting")
package abd

import (
	"context"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/types"
)

// Value is a register's contents; nil is the never-written initial state.
type Value = types.Value

// NodeID identifies a processor.
type NodeID = types.NodeID

// Errors re-exported for matching with errors.Is.
var (
	// ErrNoQuorum is returned when an operation cannot assemble a quorum
	// before its context expires — the unavoidable outcome once a majority
	// of replicas is unreachable.
	ErrNoQuorum = types.ErrNoQuorum
	// ErrClosed is returned by operations on closed clients or transports.
	ErrClosed = types.ErrClosed
)

// Register is the emulated shared-memory object: an atomic read/write
// register. Implementations in this module: ABD clients (via Cluster or
// core.Client.Register), the central-server baseline, and test fakes.
type Register interface {
	// Read returns the register's value; nil means never written.
	Read(ctx context.Context) (Value, error)
	// Write replaces the register's value.
	Write(ctx context.Context, val Value) error
}

// Client is a connection to the replica group, able to operate on any named
// register. It is an alias for the core protocol client.
type Client = core.Client

// ReplicaStats re-exports the replica counter snapshot.
type ReplicaStats = core.ReplicaStats

// MetricsSnapshot re-exports the client counter snapshot.
type MetricsSnapshot = core.MetricsSnapshot

// ReplicaMetrics re-exports the replica protocol counter set served by
// cmd/abd-node's /metrics endpoint.
type ReplicaMetrics = core.ReplicaMetrics

// LatencySnapshot re-exports the per-client latency histogram snapshot;
// merge snapshots across clients (or use Cluster.Latency) for fleet-wide
// quantiles.
type LatencySnapshot = core.LatencySnapshot

// Tracer re-exports the span sink interface. Attach one to a client with
// core.WithTracer to stream per-operation and per-phase spans; obs.NewRing
// and obs.NewJSONL are the built-in sinks.
type Tracer = obs.Tracer

// Span re-exports the traced span record.
type Span = obs.Span

var _ Register = (*core.Register)(nil)
