// Package abd is a production-quality Go implementation of the ABD
// algorithm from "Sharing Memory Robustly in Message-Passing Systems"
// (Attiya, Bar-Noy, Dolev; PODC 1990 / JACM 1995): atomic (linearizable)
// read/write registers emulated over an asynchronous message-passing system
// in which any minority of processors may crash.
//
// The package is a facade over the implementation packages:
//
//   - internal/core: the replica and client protocols (single-writer,
//     multi-writer, bounded labels, generalized quorums),
//   - internal/shard: the consistent-hash router partitioning the register
//     namespace across independent replica groups (the Store),
//   - internal/netsim: the simulated asynchronous network with fault
//     injection,
//   - internal/tcpnet: the TCP transport for real deployments,
//   - internal/quorum, internal/timestamp: the protocol's building blocks,
//   - internal/lincheck, internal/history: linearizability verification,
//   - internal/obs: latency histograms, span tracing, and the Prometheus
//     text exposition behind cmd/abd-node's /metrics,
//   - internal/snapshot, internal/bakery, internal/maxreg: shared-memory
//     algorithms running unchanged over the emulation.
//
// Everything that can operate on registers — a protocol Client, the
// reconfigurable client, a sharded Store — satisfies the one RW contract
// (Read/Write/Register), and every register handle satisfies Register.
// Code written against RW runs unchanged over one replica group or many.
//
// Quick start (see examples/quickstart for the runnable version):
//
//	cluster, _ := abd.NewCluster(5, abd.WithSeed(1))
//	defer cluster.Close()
//	client := cluster.Client()
//	_ = client.Write(ctx, "greeting", []byte("hello"))
//	v, _ := client.Read(ctx, "greeting")
//
// Sharded: partition the namespace over 3 groups of 5 behind one Store
// (same RW surface, near-linear aggregate throughput):
//
//	cluster, _ := abd.NewShardedCluster(3, 5, abd.WithSeed(1))
//	defer cluster.Close()
//	store := cluster.Store()
//	_ = store.Write(ctx, "greeting", []byte("hello"))
package abd

import (
	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/types"
)

// Value is a register's contents; nil is the never-written initial state.
type Value = types.Value

// NodeID identifies a processor.
type NodeID = types.NodeID

// Errors re-exported for matching with errors.Is.
var (
	// ErrNoQuorum is returned when an operation cannot assemble a quorum
	// before its context expires — the unavoidable outcome once a majority
	// of replicas is unreachable.
	ErrNoQuorum = types.ErrNoQuorum
	// ErrClosed is returned by operations on closed clients or transports.
	ErrClosed = types.ErrClosed
)

// Register is the emulated shared-memory object: an atomic read/write
// register. It is the one contract in this module — handles from Client,
// Store, and the reconfigurable client all satisfy it, and the
// shared-memory algorithm packages consume it.
type Register = types.Register

// RW is the shared surface of everything that operates on named registers:
// Client (one replica group), Store (many), and reconfig.Client (changing
// groups) all satisfy it.
type RW = types.RW

// Client is a connection to one replica group, able to operate on any
// named register of that group. It is an alias for the core protocol
// client.
type Client = core.Client

// ClientOption configures a Client (see internal/core's With* options;
// WithSingleWriter is re-exported here).
type ClientOption = core.ClientOption

// WithSingleWriter declares that the client is the only writer of every
// register it writes: writes skip the query phase and cost one round trip
// (the paper's SWMR protocol). The canonical spelling of the former
// Cluster.Writer: cluster.Client(abd.WithSingleWriter()).
func WithSingleWriter() ClientOption { return core.WithSingleWriter() }

// ReadMode is the client's read-path consistency profile: which of the
// read optimizations (confirmed-tag fast path, unanimous write-back skip,
// coalescing, write-back itself) are active. See core.ReadMode for the
// per-knob contracts and core.DefaultReadMode for the defaults.
type ReadMode = core.ReadMode

// DefaultReadMode returns the out-of-the-box read profile: watermark fast
// path on, coalescing on, write-backs on, unanimous skip off.
func DefaultReadMode() ReadMode { return core.DefaultReadMode() }

// WithReadMode sets the whole read profile at once; invalid combinations
// (e.g. a fast path without write-backs) are rejected by NewClient.
func WithReadMode(m ReadMode) ClientOption { return core.WithReadMode(m) }

// WithFastRead enables the confirmed-tag watermark fast path explicitly
// (it is on by default): reads complete in one round trip when the newest
// observed tag is already known quorum-durable.
func WithFastRead() ClientOption { return core.WithFastRead() }

// WithoutFastRead disables the fast path, restoring the paper's
// unconditional two-phase read.
func WithoutFastRead() ClientOption { return core.WithoutFastRead() }

// WithByzantine hardens the client's reads against up to f replicas that
// lie — fabricating timestamps, serving stale state, equivocating, or
// staying silent — not just f that crash. The client switches to masking
// quorums (n >= 4f+1 required) and adopts a (timestamp, value) pair only
// when at least f+1 replicas report it identically; a pair claiming to be
// ahead of the vouched state gets one confirm round before it is discarded
// as a lie (the ByzRejects counter the health layer exports as
// abd_health_byz_suspect_rejects_total). f = 0 is the plain crash-fault
// client unchanged. See internal/core.WithByzantine for the full contract.
func WithByzantine(f int) ClientOption { return core.WithByzantine(f) }

// Store is the sharded multi-group register store: a consistent-hash
// router over one Client per replica group, satisfying the same RW
// contract as a single-group Client. See internal/shard for the routing
// invariants (a register never spans groups; the shard map is immutable
// per Store lifetime).
type Store = shard.Store

// HashFunc hashes a register name onto the Store's ring (WithHashFunc).
type HashFunc = shard.HashFunc

// NewStore builds a Store over caller-supplied group clients (one per
// replica group, in group order — e.g. tcpnet-backed clients of a real
// deployment). The store takes ownership of the clients. Only the shard
// options (WithShards, WithVirtualNodes, WithHashFunc) apply here; for
// in-process work, Cluster.Store handles client construction too.
func NewStore(clients []*Client, opts ...Option) (*Store, error) {
	var cfg clusterConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return shard.New(clients, cfg.shardOpts...)
}

// ReplicaStats re-exports the replica counter snapshot.
type ReplicaStats = core.ReplicaStats

// MetricsSnapshot re-exports the client counter snapshot. Snapshots merge
// (MetricsSnapshot.Merge) across clients and shards.
type MetricsSnapshot = core.MetricsSnapshot

// ReplicaMetrics re-exports the replica protocol counter set served by
// cmd/abd-node's /metrics endpoint.
type ReplicaMetrics = core.ReplicaMetrics

// LatencySnapshot re-exports the per-client latency histogram snapshot;
// merge snapshots across clients (or use Cluster.Latency / Store.Latency)
// for fleet-wide quantiles.
type LatencySnapshot = core.LatencySnapshot

// Tracer re-exports the span sink interface. Attach one to a client with
// core.WithTracer (or cluster-wide with WithStoreTracer, which tags each
// shard's spans) to stream per-operation and per-phase spans; obs.NewRing
// and obs.NewJSONL are the built-in sinks.
type Tracer = obs.Tracer

// Span re-exports the traced span record.
type Span = obs.Span

// HealthStatus re-exports the live introspection snapshot returned by
// Cluster.Health and Store.Health: hot keys, replica lag watermarks, SLO
// burn state, and raised alerts (see internal/health).
type HealthStatus = health.Status

// SLO re-exports the health layer's objective configuration; pass one to
// Cluster.SetSLO / Store.SetSLO to replace the default.
type SLO = health.SLO

// HealthAlert re-exports one raised burn-rate alert.
type HealthAlert = health.Alert

var (
	_ Register = (*core.Register)(nil)
	_ RW       = (*core.Client)(nil)
	_ RW       = (*shard.Store)(nil)
)
