package main

import (
	"testing"

	"repro/internal/types"
)

func TestParsePeers(t *testing.T) {
	peers, order, err := parsePeers("2=host2:7002, 0=host0:7000,1=host1:7001")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 3 {
		t.Fatalf("peers: %v", peers)
	}
	if peers[0] != "host0:7000" || peers[2] != "host2:7002" {
		t.Fatalf("addresses: %v", peers)
	}
	// Quorum indexing order must be ascending by id regardless of input
	// order, so every client agrees on replica indexes.
	want := []types.NodeID{0, 1, 2}
	for i, id := range order {
		if id != want[i] {
			t.Fatalf("order: %v", order)
		}
	}
}

func TestParsePeersErrors(t *testing.T) {
	bad := []string{
		"",
		"  ",
		"0:addr",  // wrong separator
		"x=addr",  // non-numeric id
		"0=a,0=b", // duplicate id
	}
	for _, s := range bad {
		if _, _, err := parsePeers(s); err == nil {
			t.Errorf("parsePeers(%q) accepted", s)
		}
	}
}
