// Command abd-cli is the TCP client for a replica group started with
// abd-node.
//
// Usage:
//
//	abd-cli -peers "0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002" write greeting hello
//	abd-cli -peers "..." read greeting
//	abd-cli -peers "..." bench -ops 1000 -readpct 50
//
// Flags -single-writer and -skip-unanimous select the protocol variants.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/tcpnet"
	"repro/internal/types"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		peersFlag     = flag.String("peers", "", "replica addresses: id=host:port,...")
		id            = flag.Int("id", 100, "this client's node id (distinct from replicas)")
		timeout       = flag.Duration("timeout", 5*time.Second, "per-operation deadline")
		singleWriter  = flag.Bool("single-writer", false, "use the SWMR fast path (you must be the only writer)")
		skipUnanimous = flag.Bool("skip-unanimous", false, "skip read write-backs when the quorum is unanimous")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		return 2
	}

	peers, order, err := parsePeers(*peersFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "abd-cli: %v\n", err)
		return 2
	}

	ep, err := tcpnet.Listen(tcpnet.Config{ID: types.NodeID(*id), Peers: peers})
	if err != nil {
		fmt.Fprintf(os.Stderr, "abd-cli: %v\n", err)
		return 1
	}
	var copts []core.ClientOption
	if *singleWriter {
		copts = append(copts, core.WithSingleWriter())
	}
	if *skipUnanimous {
		copts = append(copts, core.WithSkipUnanimousWriteBack())
	}
	cli, err := core.NewClient(types.NodeID(*id), ep, order, copts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "abd-cli: %v\n", err)
		return 1
	}
	defer cli.Close()

	switch args[0] {
	case "read":
		if len(args) != 2 {
			usage()
			return 2
		}
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		v, err := cli.Read(ctx, args[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "abd-cli: %v\n", err)
			return 1
		}
		if v == nil {
			fmt.Println("(not written)")
		} else {
			fmt.Printf("%s\n", v)
		}
		return 0

	case "write":
		if len(args) != 3 {
			usage()
			return 2
		}
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		if err := cli.Write(ctx, args[1], []byte(args[2])); err != nil {
			fmt.Fprintf(os.Stderr, "abd-cli: %v\n", err)
			return 1
		}
		fmt.Println("ok")
		return 0

	case "bench":
		fs := flag.NewFlagSet("bench", flag.ContinueOnError)
		ops := fs.Int("ops", 1000, "operations to run")
		readPct := fs.Int("readpct", 50, "percentage of reads")
		reg := fs.String("reg", "bench", "register name")
		if err := fs.Parse(args[1:]); err != nil {
			return 2
		}
		return benchCmd(cli, *timeout, *ops, *readPct, *reg)

	default:
		usage()
		return 2
	}
}

func benchCmd(cli *core.Client, timeout time.Duration, ops, readPct int, reg string) int {
	start := time.Now()
	var readLat, writeLat []time.Duration
	for i := 0; i < ops; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		opStart := time.Now()
		var err error
		if i%100 < readPct {
			_, err = cli.Read(ctx, reg)
			readLat = append(readLat, time.Since(opStart))
		} else {
			err = cli.Write(ctx, reg, []byte(strconv.Itoa(i)))
			writeLat = append(writeLat, time.Since(opStart))
		}
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "abd-cli: op %d: %v\n", i, err)
			return 1
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("%d ops in %v (%.0f ops/s)\n", ops, elapsed.Round(time.Millisecond),
		float64(ops)/elapsed.Seconds())
	report := func(name string, lat []time.Duration) {
		if len(lat) == 0 {
			return
		}
		var total time.Duration
		for _, l := range lat {
			total += l
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		fmt.Printf("%s: n=%d mean=%v p50=%v p99=%v\n", name, len(lat),
			(total / time.Duration(len(lat))).Round(time.Microsecond),
			lat[len(lat)/2].Round(time.Microsecond),
			lat[int(0.99*float64(len(lat)-1))].Round(time.Microsecond))
	}
	report("reads", readLat)
	report("writes", writeLat)
	m := cli.Metrics()
	fmt.Printf("phases=%d msgs=%d write-backs=%d skipped=%d\n",
		m.Phases, m.MsgsSent, m.WriteBacks, m.WriteBacksSkipped)
	return 0
}

// parsePeers parses "0=host:port,1=host:port". Replica order (and therefore
// quorum indexing) is by ascending id.
func parsePeers(s string) (map[types.NodeID]string, []types.NodeID, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil, fmt.Errorf("missing -peers")
	}
	peers := make(map[types.NodeID]string)
	for _, part := range strings.Split(s, ",") {
		idS, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		id, err := strconv.Atoi(idS)
		if err != nil {
			return nil, nil, fmt.Errorf("bad peer id %q: %w", idS, err)
		}
		if _, dup := peers[types.NodeID(id)]; dup {
			return nil, nil, fmt.Errorf("duplicate peer id %d", id)
		}
		peers[types.NodeID(id)] = addr
	}
	order := make([]types.NodeID, 0, len(peers))
	for id := range peers {
		order = append(order, id)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	return peers, order, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  abd-cli -peers "0=addr,1=addr,2=addr" read <register>
  abd-cli -peers "..." write <register> <value>
  abd-cli -peers "..." bench [-ops N] [-readpct P] [-reg NAME]`)
}
