// Command abd-check decides linearizability of a recorded register history
// (JSON lines, as produced by abd-sim -out or internal/history.WriteJSON).
//
// Usage:
//
//	abd-check -in history.json [-timeout 30s] [-witness]
//
// Exit status: 0 linearizable, 1 not linearizable, 2 usage error,
// 3 undecided (budget exhausted).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/history"
	"repro/internal/lincheck"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		in      = flag.String("in", "", "history file (JSON lines); '-' for stdin")
		timeout = flag.Duration("timeout", 30*time.Second, "search budget")
		witness = flag.Bool("witness", false, "print a valid linearization order when found")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "usage: abd-check -in history.json [-timeout 30s] [-witness]")
		return 2
	}

	f := os.Stdin
	if *in != "-" {
		var err error
		f, err = os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "abd-check: %v\n", err)
			return 2
		}
		defer f.Close()
	}
	ops, err := history.ReadJSON(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "abd-check: %v\n", err)
		return 2
	}

	results := lincheck.CheckRegisters(ops, lincheck.Config{Timeout: *timeout})
	outcome := lincheck.AllLinearizable(results)
	var explored int64
	for _, res := range results {
		explored += res.StatesExplored
	}
	fmt.Printf("%d operations over %d register(s): %s (states explored: %d)\n",
		len(ops), len(results), outcome, explored)
	for reg, res := range results {
		if res.Outcome != lincheck.Linearizable {
			fmt.Printf("  register %q: %s\n", reg, res.Outcome)
		}
	}
	switch outcome {
	case lincheck.Linearizable:
		if *witness {
			fmt.Println("witness per register (op indexes in linearization order):")
			for reg, res := range results {
				fmt.Printf("  register %q:\n", reg)
				for _, idx := range res.Witness {
					op := ops[idx]
					fmt.Printf("    [%d] client %d %s %q\n", idx, op.Client, op.Kind, op.Value)
				}
			}
		}
		return 0
	case lincheck.NotLinearizable:
		return 1
	default:
		return 3
	}
}
