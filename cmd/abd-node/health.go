package main

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/prof"
	"repro/internal/tcpnet"
)

// watermarkLimit bounds how many registers the node reports tag watermarks
// for on /status — the hottest-by-sequence ones, which is where lag is
// interesting.
const watermarkLimit = 128

// nodeHealth assembles one node's live health view: its replica's tag
// watermarks, the embedded probe client's hot keys and SLO burn state, and
// the transport's circuit-breaker counters. Lag stays nil — a node sees
// only its own replica, so cross-replica divergence is computed by whoever
// polls every node's watermarks (abd-top does, via health.ComputeLag).
type nodeHealth struct {
	start    time.Time
	replica  *core.Replica
	ep       *tcpnet.Endpoint
	prober   *core.Client
	proberEp *tcpnet.Endpoint

	// sampler feeds the abd_prof_* runtime series on /metrics; recorder is
	// the anomaly-triggered flight recorder (nil without -prof-dir).
	sampler  *prof.Sampler
	recorder *prof.Recorder

	mu      sync.Mutex
	tracker *health.Tracker
	// pending accumulates the tracker's fresh (edge-triggered) alerts so
	// the flight-recorder watchdog sees every alert even when a /status or
	// /metrics scrape ran the evaluation that raised it. lastOpens is the
	// breaker-opens total at the watchdog's previous check.
	pending   []health.Alert
	lastOpens int64
}

func newNodeHealth(replica *core.Replica, ep *tcpnet.Endpoint, prober *core.Client, proberEp *tcpnet.Endpoint) *nodeHealth {
	return &nodeHealth{
		start:    time.Now(),
		replica:  replica,
		ep:       ep,
		prober:   prober,
		proberEp: proberEp,
		sampler:  prof.NewSampler(prof.DefaultEpoch),
		tracker:  health.NewTracker(health.DefaultSLO()),
	}
}

// status samples the node's cumulative counters into one health.Status.
// Each call ingests the probe client's current totals into the SLO
// tracker, so scraping /status (or /metrics) at any cadence yields
// correct sliding-window burn rates.
func (h *nodeHealth) status() health.Status {
	st := health.Status{
		Node:          int64(h.replica.ID()),
		UptimeSeconds: time.Since(h.start).Seconds(),
	}
	wm := h.replica.TagWatermarks(watermarkLimit)
	st.Watermarks = &wm

	if h.prober != nil {
		st.HotKeys = h.prober.HotKeys(10)
		st.HotKeyTotal = h.prober.HotKeyTotal()

		now := time.Now()
		lat := h.prober.Latency()
		m := h.prober.Metrics()
		h.mu.Lock()
		total, bad := h.tracker.SLO().Cut(lat.Read.Merge(lat.Write), m.ReadFails+m.WriteFails)
		h.tracker.Ingest(now, total, bad)
		slo, fresh := h.tracker.Evaluate(now)
		h.pending = append(h.pending, fresh...)
		st.Alerts = h.tracker.Raised()
		h.mu.Unlock()
		st.SLO = &slo

		if f := h.prober.ByzantineF(); f > 0 {
			st.Byzantine = &health.ByzStatus{
				ToleratedFaults: int64(f),
				SuspectRejects:  m.ByzRejects,
				ConfirmRounds:   m.ByzConfirms,
				MaskRetries:     m.MaskRetries,
			}
		}
	}

	br := breakerStatus(h.ep.Stats())
	if h.proberEp != nil {
		p := breakerStatus(h.proberEp.Stats())
		br.Open += p.Open
		br.Opens += p.Opens
		br.Closes += p.Closes
	}
	st.Breakers = &br
	return st
}

// watch is the flight-recorder watchdog's poll: it runs one evaluation
// (via status), drains the alerts accumulated since the last check, and
// returns them with the breaker-opens delta over the same interval. Any
// fresh alert or new breaker open is a capture trigger.
func (h *nodeHealth) watch() (fresh []health.Alert, breakerOpens int64) {
	_ = h.status()

	opens := h.ep.Stats().BreakerOpens
	if h.proberEp != nil {
		opens += h.proberEp.Stats().BreakerOpens
	}

	h.mu.Lock()
	fresh = h.pending
	h.pending = nil
	breakerOpens = opens - h.lastOpens
	h.lastOpens = opens
	h.mu.Unlock()
	return fresh, breakerOpens
}

func breakerStatus(ts tcpnet.Stats) health.BreakerStatus {
	return health.BreakerStatus{
		Open:   ts.BreakersOpen,
		Opens:  ts.BreakerOpens,
		Closes: ts.BreakerCloses,
	}
}
