package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/tcpnet"
	"repro/internal/types"
)

// TestBreakerTransitionsVisibleInMetrics is the acceptance check for the
// hardened TCP path: a client running over real tcpnet wrapped in a chaos
// layer injecting 30% message drop plus periodic connection resets, with
// one replica of three unreachable. Adaptive retransmission must keep
// every operation terminating, the unreachable peer must trip the client's
// circuit breaker, restarting that replica must close it again, and all of
// it must be visible through the /metrics exposition nodeGatherer builds.
func TestBreakerTransitionsVisibleInMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a real TCP cluster")
	}

	// Two live replicas (a majority of 3) on real sockets.
	reps := make([]*core.Replica, 2)
	addrs := make(map[types.NodeID]string)
	for i := 0; i < 2; i++ {
		ep, err := tcpnet.Listen(tcpnet.Config{ID: types.NodeID(i), ListenAddr: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		addrs[types.NodeID(i)] = ep.Addr()
		reps[i] = core.NewReplica(types.NodeID(i), ep)
		reps[i].Start()
		defer reps[i].Stop()
	}
	// Replica 2 starts dead: reserve a port, keep it closed for now.
	resv, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := resv.Addr().String()
	resv.Close()
	addrs[2] = deadAddr

	// The client's endpoint: aggressive breaker so the dead peer trips it
	// within the first few operations, chaos on top injecting 30% drop and
	// a 2% chance per message of a connection reset.
	cliEp, err := tcpnet.Listen(tcpnet.Config{
		ID:    9000,
		Peers: addrs,
		// DialTimeout is load-bearing: connecting to the reserved-but-
		// closed port fails fast on loopback, but keep the budget tight
		// anyway so a retransmitting phase never waits on the dead peer.
		DialTimeout:      200 * time.Millisecond,
		WriteTimeout:     500 * time.Millisecond,
		BackoffMin:       10 * time.Millisecond,
		BackoffMax:       100 * time.Millisecond,
		BreakerThreshold: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cnet := chaos.New(42)
	cnet.SetDefaultFaults(chaos.Faults{Drop: 0.30, Reset: 0.02})
	cli, err := core.NewClient(9000, cnet.Wrap(cliEp), []types.NodeID{0, 1, 2},
		core.WithAdaptiveRetransmit(20*time.Millisecond, 200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < 15; i++ {
		val := []byte(fmt.Sprintf("v%d", i))
		if err := cli.Write(ctx, "x", val); err != nil {
			t.Fatalf("write %d under 30%% drop: %v", i, err)
		}
		if got, err := cli.Read(ctx, "x"); err != nil {
			t.Fatalf("read %d under 30%% drop: %v", i, err)
		} else if string(got) != string(val) {
			t.Fatalf("read %d returned %q, want %q", i, got, val)
		}
	}
	if st := cliEp.Stats(); st.BreakerOpens == 0 {
		t.Fatalf("dead peer never tripped the breaker: %+v", st)
	}

	// Revive replica 2 on the reserved address: the next half-open probe
	// should succeed and close the breaker.
	ep2, err := tcpnet.Listen(tcpnet.Config{ID: 2, ListenAddr: deadAddr})
	if err != nil {
		t.Fatal(err)
	}
	rep2 := core.NewReplica(2, ep2)
	rep2.Start()
	defer rep2.Stop()
	deadline := time.Now().Add(30 * time.Second)
	for cliEp.Stats().BreakerCloses == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after replica 2 revived: %+v", cliEp.Stats())
		}
		_ = cli.Write(ctx, "x", []byte("revived"))
	}

	// Scrape the exposition nodeGatherer builds. The endpoint with breaker
	// traffic is the client's (replicas dial no one), so pass it in the
	// probe slot — exactly how abd-node surfaces its embedded probe client,
	// whose endpoint is likewise the one that dials the replica group.
	srv := httptest.NewServer(obs.Expose(nodeGatherer(newNodeHealth(reps[0], cliEp, nil, cliEp))))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"abd_transport_breaker_opens_total",
		"abd_transport_breaker_probes_total",
		"abd_transport_breaker_closes_total",
		"abd_transport_suppressed_sends_total",
	} {
		re := regexp.MustCompile(series + `\{node="0"\} (\d+)`)
		m := re.FindSubmatch(body)
		if m == nil {
			t.Errorf("series %s missing from /metrics", series)
			continue
		}
		if v, _ := strconv.Atoi(string(m[1])); v == 0 {
			t.Errorf("series %s is 0, want > 0", series)
		}
	}
	if !regexp.MustCompile(`abd_transport_breakers_open\{node="0"\} \d`).Match(body) {
		t.Error("breakers_open gauge missing from /metrics")
	}
	if !regexp.MustCompile(`abd_transport_resets_total\{node="0"\} [1-9]`).Match(body) {
		t.Error("resets counter missing or zero in /metrics (chaos reset faults should have fired)")
	}
}
