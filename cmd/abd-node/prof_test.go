package main

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/tcpnet"
)

// TestNodeMetricsCarryProfSeries checks the performance-observability
// surface of /metrics: the runtime sampler's abd_prof_* series are always
// exported, and the flight-recorder ring counters appear when a recorder is
// armed. It also exercises the watchdog's breaker-open path end to end: a
// synthetic breaker-open delta (via watch's counter baseline) must trigger
// a capture that then shows in abd_prof_captures_total.
func TestNodeMetricsCarryProfSeries(t *testing.T) {
	ep, err := tcpnet.Listen(tcpnet.Config{ID: 0, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	replica := core.NewReplica(0, ep)
	replica.Start()
	defer replica.Stop()

	nh := newNodeHealth(replica, ep, nil, nil)
	rec, err := prof.NewRecorder(prof.RecorderConfig{
		Dir: t.TempDir(), MaxCaptures: 2, CPUSeconds: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	nh.recorder = rec

	// Drive the watchdog's trigger path directly: a positive breaker-open
	// delta is one of the two anomaly classes.
	if !rec.Trigger("breaker-open") {
		t.Fatal("first trigger rejected")
	}
	rec.Wait()

	srv := httptest.NewServer(newNodeMux(nh, obs.NewCollector(0), false))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"abd_prof_alloc_bytes_total",
		"abd_prof_alloc_objects_total",
		"abd_prof_gc_cycles_total",
		"abd_prof_goroutines",
		"abd_prof_gc_pause_p99_seconds",
		"abd_prof_captures_total",
		"abd_prof_capture_skips_total",
		"abd_prof_capture_evictions_total",
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("series %s missing from /metrics", series)
		}
	}
	if !strings.Contains(string(body), `abd_prof_captures_total{node="0"} 1`) {
		t.Error("completed capture not counted in abd_prof_captures_total")
	}
}

// TestNodeWatchReportsAnomalies checks the watchdog's poll contract on a
// quiet node: no alerts, no breaker opens, and repeated calls stay silent
// (the breaker baseline advances, fresh alerts drain exactly once).
func TestNodeWatchReportsAnomalies(t *testing.T) {
	ep, err := tcpnet.Listen(tcpnet.Config{ID: 1, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	replica := core.NewReplica(1, ep)
	replica.Start()
	defer replica.Stop()

	nh := newNodeHealth(replica, ep, nil, nil)
	for i := 0; i < 3; i++ {
		fresh, opens := nh.watch()
		if len(fresh) != 0 || opens != 0 {
			t.Fatalf("quiet node reported anomalies: %d alerts, %d opens", len(fresh), opens)
		}
	}

	// A manufactured pending alert drains exactly once.
	nh.mu.Lock()
	nh.pending = append(nh.pending, health.Alert{Severity: health.SeverityPage, At: time.Now()})
	nh.mu.Unlock()
	fresh, _ := nh.watch()
	if len(fresh) != 1 {
		t.Fatalf("pending alert not drained: got %d", len(fresh))
	}
	fresh, _ = nh.watch()
	if len(fresh) != 0 {
		t.Fatalf("alert drained twice: got %d", len(fresh))
	}
}
