// Command abd-node runs one ABD replica over TCP. A replica group of n
// nodes emulates atomic registers tolerating any ⌊(n-1)/2⌋ crashes.
//
// Usage:
//
//	abd-node -id 0 -listen 127.0.0.1:7000 [-bounded-window L]
//
// Replicas need no peer table: they answer clients over the connections the
// clients opened. Stop with SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/tcpnet"
	"repro/internal/types"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id      = flag.Int("id", 0, "this replica's node id")
		listen  = flag.String("listen", "127.0.0.1:7000", "TCP listen address")
		bounded = flag.Int64("bounded-window", 0, "enable bounded labels with this liveness window (0 = unbounded)")
		wal     = flag.String("wal", "", "write-ahead log path for crash-recovery (empty = in-memory only)")
	)
	flag.Parse()

	ep, err := tcpnet.Listen(tcpnet.Config{
		ID:         types.NodeID(*id),
		ListenAddr: *listen,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "abd-node: %v\n", err)
		return 1
	}

	var ropts []core.ReplicaOption
	if *bounded > 0 {
		ropts = append(ropts, core.WithReplicaBoundedWindow(*bounded))
	}
	var replica *core.Replica
	if *wal != "" {
		replica, err = core.NewPersistentReplica(types.NodeID(*id), ep, *wal, ropts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "abd-node: %v\n", err)
			return 1
		}
	} else {
		replica = core.NewReplica(types.NodeID(*id), ep, ropts...)
	}
	replica.Start()
	fmt.Printf("abd-node: replica %d serving on %s\n", *id, ep.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	replica.Stop()
	st := replica.Stats()
	fmt.Printf("abd-node: stopped (queries=%d updates=%d adoptions=%d)\n",
		st.Queries, st.Updates, st.Adoptions)
	return 0
}
