// Command abd-node runs one ABD replica over TCP. A replica group of n
// nodes emulates atomic registers tolerating any ⌊(n-1)/2⌋ crashes.
//
// Usage:
//
//	abd-node -id 0 -listen 127.0.0.1:7000 [-bounded-window L] \
//	         [-metrics-addr 127.0.0.1:9100] \
//	         [-peers "0=127.0.0.1:7000,1=...,2=..." -probe-interval 1s]
//
// Replicas need no peer table: they answer clients over the connections the
// clients opened. With -metrics-addr set, the node serves Prometheus text
// metrics on /metrics (client, replica, transport, and process series — see
// the README's Observability section for the naming conventions), a JSON
// health report on /healthz (uptime, build revision, span-drop counter), a
// live introspection report on /status (tag watermarks, hot keys, SLO burn
// state, breaker counters — the feed abd-top renders), and the span
// collector on /spans (GET pulls collected spans as JSONL for abd-trace;
// POST pushes spans from another process). -pprof additionally mounts
// net/http/pprof under /debug/pprof/ on the same mux. With -peers also set,
// the node runs an embedded probe client against the whole replica group:
// one end-to-end write+read pair per -probe-interval, whose latency
// histograms populate the abd_client_* series (without -peers those series
// export zero samples) and whose spans — with -trace-out or -metrics-addr —
// trace each probe through transport, replica handler, and WAL append.
// -prof-dir arms the anomaly-triggered flight recorder: a watchdog polls the
// node's health every -prof-check-interval and captures CPU/heap/goroutine
// profiles into a bounded on-disk ring (-prof-captures sets, oldest evicted)
// whenever an SLO burn alert fires or a circuit breaker opens, so the
// profiles of an incident are on disk before anyone starts debugging it.
// -mutex-profile-fraction and -block-profile-rate enable the contention
// profilers (off by default; both cost CPU proportional to the sampled event
// rate), and -runtime-trace brackets probe operations as runtime/trace
// tasks with quorum phases as regions. SIGINT/SIGTERM shut the node down
// gracefully: the probe client stops, the WAL is compacted to one record
// per register, the replica drains, and the final counters are printed; a
// second signal kills the process immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/tcpnet"
	"repro/internal/types"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id       = flag.Int("id", 0, "this replica's node id")
		listen   = flag.String("listen", "127.0.0.1:7000", "TCP listen address")
		bounded  = flag.Int64("bounded-window", 0, "enable bounded labels with this liveness window (0 = unbounded)")
		wal      = flag.String("wal", "", "write-ahead log path for crash-recovery (empty = in-memory only)")
		metrics  = flag.String("metrics-addr", "", "serve /metrics, /healthz, and /status on this address (empty = disabled)")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the metrics address")
		peers    = flag.String("peers", "", "replica addresses id=host:port,... for the embedded probe client (empty = no probing)")
		probeIv  = flag.Duration("probe-interval", time.Second, "end-to-end probe period when -peers is set")
		byzF     = flag.Int("byz", 0, "probe with Byzantine read validation tolerating this many lying replicas (requires -peers with n >= 4f+1; surfaces abd_health_byz_* series)")
		traceOut = flag.String("trace-out", "", "write every span (replica handlers, WAL appends, transport hops, probe ops) as JSONL to this file for abd-trace")

		profDir      = flag.String("prof-dir", "", "arm the anomaly-triggered flight recorder: capture CPU/heap/goroutine profiles into this directory on SLO burn alerts and circuit-breaker opens (bounded ring, oldest evicted)")
		profCaptures = flag.Int("prof-captures", 8, "flight-recorder ring size (capture sets kept on disk)")
		profCPUSecs  = flag.Float64("prof-cpu-seconds", 1, "CPU profile duration per flight-recorder capture")
		profCheckIv  = flag.Duration("prof-check-interval", 5*time.Second, "flight-recorder anomaly poll period")
		mutexFrac    = flag.Int("mutex-profile-fraction", 0, "runtime.SetMutexProfileFraction: sample 1/n mutex contention events for /debug/pprof/mutex (0 = off; small n costs a few percent under contention)")
		blockRate    = flag.Int("block-profile-rate", 0, "runtime.SetBlockProfileRate: sample blocking events >= n ns for /debug/pprof/block (0 = off; 1 samples everything and is expensive)")
		runtimeTrace = flag.Bool("runtime-trace", false, "bracket probe operations as runtime/trace tasks and quorum phases as regions (visible in go tool trace when a trace session runs, e.g. /debug/pprof/trace)")
	)
	flag.Parse()

	// Contention profilers are opt-in: both sample globally and cost CPU in
	// proportion to the sampled event rate, so default off and document the
	// price on the flag.
	if *mutexFrac > 0 {
		runtime.SetMutexProfileFraction(*mutexFrac)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}

	// Tracing is armed whenever anything can consume the spans: a -trace-out
	// file, or the /spans endpoint next to /metrics. It stays zero-cost for
	// untraced traffic either way — the replica and transport only emit spans
	// for messages that arrive carrying a trace context.
	var (
		spanCol    *obs.Collector
		tracer     obs.Tracer
		traceFile  *os.File
		traceJSONL *obs.JSONL
	)
	if *traceOut != "" || *metrics != "" {
		spanCol = obs.NewCollector(0)
		tracer = spanCol
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "abd-node: %v\n", err)
			return 1
		}
		traceFile, traceJSONL = f, obs.NewJSONL(f)
		tracer = obs.Multi{spanCol, traceJSONL}
	}

	ep, err := tcpnet.Listen(tcpnet.Config{
		ID:         types.NodeID(*id),
		ListenAddr: *listen,
		Tracer:     tracer,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "abd-node: %v\n", err)
		return 1
	}

	var ropts []core.ReplicaOption
	if *bounded > 0 {
		ropts = append(ropts, core.WithReplicaBoundedWindow(*bounded))
	}
	if tracer != nil {
		ropts = append(ropts, core.WithReplicaTracer(tracer))
	}
	var replica *core.Replica
	if *wal != "" {
		replica, err = core.NewPersistentReplica(types.NodeID(*id), ep, *wal, ropts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "abd-node: %v\n", err)
			return 1
		}
	} else {
		replica = core.NewReplica(types.NodeID(*id), ep, ropts...)
	}
	replica.Start()
	fmt.Printf("abd-node: replica %d serving on %s\n", *id, ep.Addr())

	var prober *core.Client
	var proberEp *tcpnet.Endpoint
	if *peers != "" {
		prober, proberEp, err = startProber(types.NodeID(*id), *peers, *probeIv, *byzF, *runtimeTrace, tracer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "abd-node: probe client: %v\n", err)
			return 1
		}
	} else if *byzF > 0 {
		fmt.Fprintln(os.Stderr, "abd-node: -byz requires -peers; ignoring")
	}

	nh := newNodeHealth(replica, ep, prober, proberEp)
	watchStop := make(chan struct{})
	if *profDir != "" {
		rec, err := prof.NewRecorder(prof.RecorderConfig{
			Dir:         *profDir,
			MaxCaptures: *profCaptures,
			CPUSeconds:  *profCPUSecs,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "abd-node: flight recorder: %v\n", err)
			return 1
		}
		nh.recorder = rec
		go watchAnomalies(nh, *profCheckIv, watchStop)
		fmt.Printf("abd-node: flight recorder armed (dir %s, ring %d, cpu %.1fs)\n",
			*profDir, *profCaptures, *profCPUSecs)
	}

	var srv *http.Server
	if *metrics != "" {
		mux := newNodeMux(nh, spanCol, *pprofOn)
		srv = &http.Server{Addr: *metrics, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "abd-node: metrics server: %v\n", err)
			}
		}()
		fmt.Printf("abd-node: metrics on http://%s/metrics\n", *metrics)
	} else if *pprofOn {
		fmt.Fprintln(os.Stderr, "abd-node: -pprof requires -metrics-addr; ignoring")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	signal.Stop(sig) // a second signal kills the process the default way
	fmt.Printf("abd-node: %v: shutting down\n", s)

	// Orderly teardown: stop taking probe traffic, compact the WAL down to
	// one record per register while the replica is still consistent, then
	// stop the replica (closes the endpoint, drains the message loop, and
	// closes the log). The metrics server goes last so a final scrape can
	// still observe the drained counters.
	close(watchStop)
	if nh.recorder != nil {
		nh.recorder.Close() // waits out an in-flight capture
		rs := nh.recorder.Stats()
		fmt.Printf("abd-node: flight recorder: %d triggered, %d captured, %d skipped, %d evicted\n",
			rs.Triggered, rs.Captured, rs.Skipped, rs.Evicted)
	}
	if prober != nil {
		prober.Close()
	}
	if err := replica.CompactLog(); err != nil {
		fmt.Fprintf(os.Stderr, "abd-node: wal compaction: %v\n", err)
	}
	replica.Stop()
	if srv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = srv.Shutdown(sctx)
		cancel()
	}
	if traceJSONL != nil {
		if err := traceJSONL.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "abd-node: trace file: %v\n", err)
		}
		if err := traceFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "abd-node: trace file: %v\n", err)
		}
		fmt.Printf("abd-node: %d spans written to %s (%d dropped from /spans buffer)\n",
			spanCol.Len(), *traceOut, spanCol.Dropped())
	}
	st := replica.ReplicaMetrics()
	ts := ep.Stats()
	fmt.Printf("abd-node: stopped (queries=%d updates=%d adoptions=%d stale=%d registers=%d "+
		"frames_sent=%d write_timeouts=%d breaker_opens=%d)\n",
		st.Queries, st.Updates, st.Adoptions, st.StaleRejects, st.Registers,
		ts.FramesSent, ts.WriteTimeouts, ts.BreakerOpens)
	return 0
}

// watchAnomalies is the flight-recorder watchdog: every interval it drains
// the health tracker's fresh burn alerts and the transport's breaker-open
// delta, and pulls the recorder's trigger for each anomaly class. The
// recorder's cooldown and single-flight gate bound the capture rate no
// matter how noisy the anomalies get.
func watchAnomalies(nh *nodeHealth, interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			fresh, opens := nh.watch()
			for _, a := range fresh {
				nh.recorder.Trigger("slo-" + string(a.Severity))
			}
			if opens > 0 {
				nh.recorder.Trigger("breaker-open")
			}
		}
	}
}

// newNodeMux assembles the node's HTTP surface: the obs endpoints
// (/metrics, /healthz, /spans) at the root, the live health report on
// /status, and — when enabled — net/http/pprof under /debug/pprof/.
func newNodeMux(nh *nodeHealth, spans *obs.Collector, pprofOn bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/", obs.ExposeFull(nodeGatherer(nh), spans))
	mux.Handle("/status", health.Handler(nh.status))
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// startProber connects an embedded client to the replica group and probes
// one end-to-end write+read pair per interval against a per-node register,
// so the node's own /metrics carries real client-side latency histograms.
// The goroutine stops when the returned client is closed. With a tracer the
// probe operations are traced end to end, so a node group with -trace-out
// (or the /spans endpoint) continuously self-samples its own critical path.
func startProber(id types.NodeID, peersSpec string, interval time.Duration, byz int, runtimeTrace bool, tracer obs.Tracer) (*core.Client, *tcpnet.Endpoint, error) {
	peers, order, err := parsePeers(peersSpec)
	if err != nil {
		return nil, nil, err
	}
	// Client ids live in a range disjoint from replica ids.
	cliID := 9000 + id
	ep, err := tcpnet.Listen(tcpnet.Config{ID: cliID, Peers: peers, Tracer: tracer})
	if err != nil {
		return nil, nil, err
	}
	var copts []core.ClientOption
	if tracer != nil {
		copts = append(copts, core.WithTracer(tracer))
	}
	if byz > 0 {
		copts = append(copts, core.WithByzantine(byz))
	}
	if runtimeTrace {
		copts = append(copts, core.WithRuntimeTrace())
	}
	cli, err := core.NewClient(cliID, ep, order, copts...)
	if err != nil {
		ep.Close()
		return nil, nil, err
	}
	reg := fmt.Sprintf("__probe.%d", id)
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for i := 0; ; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), interval)
			err := cli.Write(ctx, reg, []byte(strconv.Itoa(i)))
			if err == nil {
				_, err = cli.Read(ctx, reg)
			}
			cancel()
			if errors.Is(err, types.ErrClosed) {
				return
			}
			<-tick.C
		}
	}()
	return cli, ep, nil
}

// parsePeers parses "0=host:port,1=host:port"; replica order (and quorum
// indexing) is ascending id, matching abd-cli.
func parsePeers(s string) (map[types.NodeID]string, []types.NodeID, error) {
	peers := make(map[types.NodeID]string)
	for _, part := range strings.Split(s, ",") {
		idS, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		id, err := strconv.Atoi(idS)
		if err != nil {
			return nil, nil, fmt.Errorf("bad peer id %q: %w", idS, err)
		}
		if _, dup := peers[types.NodeID(id)]; dup {
			return nil, nil, fmt.Errorf("duplicate peer id %d", id)
		}
		peers[types.NodeID(id)] = addr
	}
	order := make([]types.NodeID, 0, len(peers))
	for id := range peers {
		order = append(order, id)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	return peers, order, nil
}

// nodeGatherer exposes the probe client's latency histograms, the replica's
// protocol counters, the TCP transport counters, the abd_health_* series,
// and a few process gauges, all labeled with the node id. The prober may be
// nil; the client series are still exported, with zero samples. When the
// probe endpoint exists its transport counters are exported under the same
// series names with an extra endpoint="probe" label — that endpoint dials
// the whole replica group, so it is where circuit-breaker transitions show
// when a peer replica dies.
func nodeGatherer(nh *nodeHealth) obs.Gatherer {
	replica, ep, prober, proberEp := nh.replica, nh.ep, nh.prober, nh.proberEp
	labels := obs.Labels{"node": strconv.FormatInt(int64(replica.ID()), 10)}
	return func(w *obs.Writer) {
		var lat core.LatencySnapshot
		var cm core.MetricsSnapshot
		if prober != nil {
			lat = prober.Latency()
			cm = prober.Metrics()
		}
		w.Histogram("abd_client_read_seconds", "end-to-end read latency (embedded probe client)", labels, lat.Read)
		w.Histogram("abd_client_write_seconds", "end-to-end write latency (embedded probe client)", labels, lat.Write)
		w.Histogram("abd_client_phase_query_seconds", "query phase latency (embedded probe client)", labels, lat.PhaseQuery)
		w.Histogram("abd_client_phase_update_seconds", "update/write-back phase latency (embedded probe client)", labels, lat.PhaseUpdate)
		w.Counter("abd_client_phases_total", "broadcast-and-collect rounds run by the probe client", labels, cm.Phases)
		w.Counter("abd_client_msgs_sent_total", "request messages sent by the probe client", labels, cm.MsgsSent)
		w.Counter("abd_client_coalesced_reads_total", "reads served by joining another read's quorum round", labels, cm.CoalescedReads)
		w.Counter("abd_client_absorbed_writes_total", "writes absorbed into a concurrent write's round", labels, cm.AbsorbedWrites)
		w.Counter("abd_client_fast_path_reads_total", "reads completed in one round via the confirmed watermark", labels, cm.FastPathReads)
		w.Counter("abd_client_read_rounds_total", "quorum rounds paid by completed reads (rounds/read = mean read cost)", labels, cm.ReadRounds)
		w.Histogram("abd_client_read_rounds", "quorum rounds per completed read (1 = fast path)", labels, lat.ReadRounds)
		rm := replica.ReplicaMetrics()
		w.Counter("abd_replica_queries_total", "read queries handled", labels, rm.Queries)
		w.Counter("abd_replica_updates_total", "write/update requests handled", labels, rm.Updates)
		w.Counter("abd_replica_adoptions_total", "updates that replaced the stored pair", labels, rm.Adoptions)
		w.Counter("abd_replica_stale_rejects_total", "updates with a tag at or below the stored one", labels, rm.StaleRejects)
		w.Counter("abd_replica_order_violations_total", "bounded-mode comparisons outside the sound window", labels, rm.OrderViolations)
		w.Counter("abd_replica_bad_msgs_total", "undecodable payloads", labels, rm.BadMsgs)
		w.Counter("abd_replica_batches_total", "group commits (updates/batches = mean writes per commit)", labels, rm.Batches)
		w.Counter("abd_replica_fsyncs_total", "WAL flushes issued; under load stays below adoptions (group-commit amortization)", labels, rm.Fsyncs)
		w.Gauge("abd_replica_registers", "named registers stored", labels, float64(rm.Registers))

		transport := func(lb obs.Labels, ts tcpnet.Stats) {
			w.Counter("abd_transport_frames_sent_total", "TCP frames written", lb, ts.FramesSent)
			w.Counter("abd_transport_frames_recv_total", "TCP frames parsed", lb, ts.FramesRecv)
			w.Counter("abd_transport_bytes_sent_total", "TCP bytes written (incl. frame headers)", lb, ts.BytesSent)
			w.Counter("abd_transport_bytes_recv_total", "TCP bytes parsed (incl. frame headers)", lb, ts.BytesRecv)
			w.Counter("abd_transport_dials_total", "outbound connections established", lb, ts.Dials)
			w.Counter("abd_transport_dial_failures_total", "outbound connection attempts that failed", lb, ts.DialFailures)
			w.Counter("abd_transport_accepts_total", "inbound connections accepted", lb, ts.Accepts)
			w.Counter("abd_transport_write_failures_total", "frame writes that errored", lb, ts.WriteFailures)
			w.Counter("abd_transport_write_timeouts_total", "frame writes that missed the write deadline", lb, ts.WriteTimeouts)
			w.Counter("abd_transport_suppressed_sends_total", "sends swallowed as loss while a peer was backing off or broken", lb, ts.SuppressedSends)
			w.Counter("abd_transport_breaker_opens_total", "circuit breakers tripped open", lb, ts.BreakerOpens)
			w.Counter("abd_transport_breaker_probes_total", "half-open probe attempts", lb, ts.BreakerProbes)
			w.Counter("abd_transport_breaker_closes_total", "circuit breakers recovered closed", lb, ts.BreakerCloses)
			w.Gauge("abd_transport_breakers_open", "peers with an open or half-open breaker", lb, float64(ts.BreakersOpen))
			w.Counter("abd_transport_resets_total", "connections torn down via ResetPeer", lb, ts.Resets)
			w.Gauge("abd_transport_conns_active", "cached TCP connections", lb, float64(ts.ConnsActive))
		}
		transport(labels, ep.Stats())
		if proberEp != nil {
			plabels := obs.Labels{"node": labels["node"], "endpoint": "probe"}
			transport(plabels, proberEp.Stats())
		}

		var mem runtime.MemStats
		runtime.ReadMemStats(&mem)
		w.Gauge("abd_node_uptime_seconds", "seconds since process start", labels, time.Since(nh.start).Seconds())
		w.Gauge("abd_node_goroutines", "live goroutines", labels, float64(runtime.NumGoroutine()))
		w.Gauge("abd_node_heap_alloc_bytes", "heap bytes in use", labels, float64(mem.HeapAlloc))
		w.Gauge("abd_node_heap_bytes", "heap bytes held in in-use spans", labels, float64(mem.HeapInuse))
		w.Gauge("abd_node_gc_pause_seconds", "cumulative stop-the-world GC pause time", labels, float64(mem.PauseTotalNs)/1e9)

		health.WriteMetrics(w, labels, nh.status())

		// Runtime allocation/GC attribution on a stats-epoch cadence, plus
		// the flight recorder's ring counters when one is armed.
		nh.sampler.WriteMetrics(w, labels)
		if nh.recorder != nil {
			rs := nh.recorder.Stats()
			w.Counter("abd_prof_captures_total", "flight-recorder capture sets completed", labels, rs.Captured)
			w.Counter("abd_prof_capture_skips_total", "triggers skipped (cooldown or capture in flight)", labels, rs.Skipped)
			w.Counter("abd_prof_capture_evictions_total", "capture sets evicted from the on-disk ring", labels, rs.Evicted)
		}
	}
}
