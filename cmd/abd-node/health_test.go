package main

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/tcpnet"
	"repro/internal/types"
)

// TestNodeMuxServesStatusAndPprof wires a single replica the way run()
// does and checks the whole HTTP surface: /status serves a well-formed
// health report with this replica's tag watermarks, /metrics carries the
// new process gauges and the abd_health_* series, and the pprof index
// appears exactly when the flag is on.
func TestNodeMuxServesStatusAndPprof(t *testing.T) {
	ep, err := tcpnet.Listen(tcpnet.Config{ID: 0, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	replica := core.NewReplica(0, ep)
	replica.Start()
	defer replica.Stop()

	// Install a few tags directly through the replica's own store by
	// driving a client at it, so /status has watermarks to report.
	cliEp, err := tcpnet.Listen(tcpnet.Config{ID: 9000, Peers: map[types.NodeID]string{0: ep.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := core.NewClient(9000, cliEp, []types.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := t.Context()
	for _, reg := range []string{"a", "b"} {
		if err := cli.Write(ctx, reg, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	nh := newNodeHealth(replica, ep, cli, cliEp)
	srv := httptest.NewServer(newNodeMux(nh, obs.NewCollector(0), true))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st health.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("/status is not valid JSON: %v", err)
	}
	resp.Body.Close()
	if st.Node != 0 {
		t.Fatalf("status node = %d, want 0", st.Node)
	}
	if st.Watermarks == nil || len(st.Watermarks.Tags) != 2 {
		t.Fatalf("watermarks = %+v, want tags for a and b", st.Watermarks)
	}
	for _, reg := range []string{"a", "b"} {
		if tag := st.Watermarks.Tags[reg]; tag.Seq < 1 {
			t.Fatalf("watermark for %s = %+v, want seq >= 1", reg, tag)
		}
	}
	if st.SLO == nil || st.SLO.Name == "" {
		t.Fatalf("slo block missing: %+v", st.SLO)
	}
	if st.HotKeyTotal < 2 {
		t.Fatalf("hot key total = %d, want >= 2", st.HotKeyTotal)
	}
	if st.Breakers == nil {
		t.Fatal("breakers block missing")
	}

	resp, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"abd_node_heap_bytes",
		"abd_node_gc_pause_seconds",
		"abd_health_tracked_ops_total",
		"abd_health_watermark_seq",
		"abd_health_breakers_open",
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("series %s missing from /metrics", series)
		}
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index returned %d with -pprof on", resp.StatusCode)
	}

	// Without the flag the pprof paths fall through to the obs mux's 404.
	plain := httptest.NewServer(newNodeMux(nh, obs.NewCollector(0), false))
	defer plain.Close()
	resp, err = plain.Client().Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("pprof index served without -pprof")
	}
}
