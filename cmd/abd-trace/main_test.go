package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// base is an arbitrary fixed wall time for synthetic spans.
var base = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

// syntheticSpans builds one fully-traced write with a known critical path —
// closer replica 2, 1ms of fsync inside a 3ms handler, quorum closed at 6ms
// into a 10ms op — plus a small read, so every analysis stage has input.
func syntheticSpans() []obs.Span {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	return []obs.Span{
		{Trace: 1, ID: 100, Kind: "write", Reg: "x", Node: 9000, Start: base, Dur: ms(10)},
		{Trace: 1, ID: 101, Parent: 100, Kind: "phase", Phase: "update", Reg: "x", Node: 9000,
			Start: base, Dur: ms(6), Targets: 3, Quorum: 2, FirstReply: ms(4), LastReply: ms(6),
			ReplicaRTT: map[int64]time.Duration{1: ms(4), 2: ms(6)}},
		{Trace: 1, ID: 102, Parent: 101, Kind: "net-send", Node: 9000, Peer: 2,
			Start: base, Dur: ms(1)},
		{Trace: 1, ID: 103, Parent: 101, Kind: "handle", Phase: "update", Reg: "x", Node: 2,
			Start: base.Add(ms(2)), Dur: ms(3)},
		{Trace: 1, ID: 104, Parent: 103, Kind: "wal-append", Reg: "x", Node: 2,
			Start: base.Add(ms(3)), Dur: ms(1)},
		{Trace: 1, ID: 105, Parent: 101, Kind: "handle", Phase: "update", Reg: "x", Node: 1,
			Start: base.Add(ms(1)), Dur: ms(2)},
		{Trace: 1, ID: 106, Parent: 103, Kind: "net-recv", Node: 9000, Peer: 2,
			Start: base.Add(ms(5)), Dur: ms(1)},
		// Replica 3 handled the request but its reply never made the quorum:
		// it must still appear in the attribution table (answered 0).
		{Trace: 1, ID: 107, Parent: 101, Kind: "handle", Phase: "update", Reg: "x", Node: 3,
			Start: base.Add(ms(7)), Dur: ms(1)},

		{Trace: 2, ID: 200, Kind: "read", Reg: "x", Node: 9001, Start: base.Add(ms(20)), Dur: ms(2)},
		{Trace: 2, ID: 201, Parent: 200, Kind: "phase", Phase: "query", Reg: "x", Node: 9001,
			Start: base.Add(ms(20)), Dur: ms(2), Targets: 3, Quorum: 2, LastReply: ms(2),
			ReplicaRTT: map[int64]time.Duration{1: ms(1), 2: ms(2)}},
	}
}

func TestDecompose(t *testing.T) {
	traces := obs.AssembleTraces(syntheticSpans())
	var write *obs.TraceNode
	for _, tr := range traces {
		if tr.Root != nil && tr.Root.Span.Kind == "write" {
			write = tr.Root
		}
	}
	if write == nil {
		t.Fatal("write trace did not assemble")
	}
	op := decompose(write)
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	if op.closer != 2 {
		t.Fatalf("closer = %d, want 2", op.closer)
	}
	want := breakdown{Client: ms(4), Network: ms(3), Handler: ms(2), Fsync: ms(1)}
	if op.bd != want {
		t.Fatalf("breakdown %+v, want %+v", op.bd, want)
	}
	if op.bd.sum() != op.span.Dur {
		t.Fatalf("components sum to %v, op took %v", op.bd.sum(), op.span.Dur)
	}
	if op.slowPhase.Phase != "update" {
		t.Fatalf("slowest phase %q, want update", op.slowPhase.Phase)
	}
}

func TestRunReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	j := obs.NewJSONL(f)
	for _, s := range syntheticSpans() {
		j.Emit(s)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var buf bytes.Buffer
	if err := run([]string{path}, 2, 0.95, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"stitch: 6/6 remote spans reach an operation (100.0%)",
		"critical path across 2 ops",
		"p99 operation: write(x) client=9000 10.00ms",
		"slowest phase: update (quorum 2/3 closed at 6.00ms)",
		"straggler: replica 2 closed this quorum",
		"replica quorum participation (2 phases)",
		"wal-append @2",
		"phase update [q=2/3]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The quorum-missing replica 3 gets a row: answered 0, closer 0, missed 2.
	if !regexp.MustCompile(`(?m)^  3\s+0\s+0\s+2\s`).MatchString(out) {
		t.Errorf("replica 3 (handled but never counted) missing from attribution table:\n%s", out)
	}
}

func TestRunMinStitchFails(t *testing.T) {
	spans := append(syntheticSpans(),
		// A remote span whose parent never arrived: unstitchable.
		obs.Span{Trace: 9, ID: 900, Parent: 899, Kind: "handle", Node: 1, Start: base, Dur: time.Millisecond})
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	j := obs.NewJSONL(f)
	for _, s := range spans {
		j.Emit(s)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var buf bytes.Buffer
	if err := run([]string{path}, 1, 1.0, &buf); err == nil {
		t.Fatalf("run accepted stitch ratio below 1.0:\n%s", buf.String())
	}
}

func TestRunEmptyInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run([]string{path}, 1, 0, &buf)
	if err == nil {
		t.Fatal("empty input accepted")
	}
	// The diagnostic must name the offending input and point at the likely
	// cause, so a zero-span nemesis or smoke run fails loudly and legibly.
	for _, want := range []string{path, "-trace-out"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("zero-span diagnostic %q missing %q", err, want)
		}
	}
	if buf.Len() != 0 {
		t.Errorf("zero-span input still rendered a report:\n%s", buf.String())
	}
}
