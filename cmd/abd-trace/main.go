// abd-trace analyzes span dumps produced by traced ABD processes (the
// -trace-out JSONL files of abd-node and abd-sim, or a GET of a live node's
// /spans endpoint). It stitches spans from every process into per-operation
// trace trees and answers the two questions raw latency histograms cannot:
// where inside the slowest operations the time went (client queueing,
// network, replica handler, fsync), and which replica kept closing — or
// missing — the quorum.
//
// Usage:
//
//	abd-trace [-top N] [-min-stitch F] spans.jsonl [more.jsonl ...]
//
// Reads stdin when no files are given (or a file is "-"). With -min-stitch,
// exits nonzero when fewer than that fraction of replica/transport spans
// trace back to a client operation — the CI smoke test's assertion that
// wire-level propagation survived a nemesis run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	var (
		top       = flag.Int("top", 3, "render the N slowest operations as flame trees")
		minStitch = flag.Float64("min-stitch", 0, "exit nonzero when the stitch ratio is below this fraction")
	)
	flag.Parse()
	if err := run(flag.Args(), *top, *minStitch, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "abd-trace:", err)
		os.Exit(1)
	}
}

func run(files []string, top int, minStitch float64, w io.Writer) error {
	col := obs.NewCollector(0)
	if len(files) == 0 {
		files = []string{"-"}
	}
	for _, f := range files {
		if err := ingest(col, f); err != nil {
			return err
		}
	}
	spans := col.Spans()
	if len(spans) == 0 {
		src := strings.Join(files, ", ")
		if src == "-" {
			src = "stdin"
		}
		return fmt.Errorf("no spans in %s — the input parsed cleanly but held zero span records; "+
			"was the producing process started with -trace-out (or, for a live node, "+
			"-metrics-addr so /spans collects)?", src)
	}

	st := obs.Stitch(spans)
	report(w, spans, st, top)

	if st.Ratio() < minStitch {
		return fmt.Errorf("stitch ratio %.3f below required %.3f (%d/%d remote spans reached an operation)",
			st.Ratio(), minStitch, st.Stitched, st.Total)
	}
	return nil
}

func ingest(col *obs.Collector, path string) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	if _, err := col.IngestJSONL(r); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// breakdown is one operation's critical path split into where the time went.
// The decomposition works per phase off the quorum-closing reply: the closer
// is the counted replica with the largest reply offset; its handler interval
// splits into fsync (wal-append children) and pure handler time; whatever of
// the closing reply's round trip the handler does not account for is
// network (request + reply legs plus transport queueing). Client is the
// remainder of the operation — local queueing, retransmit scheduling, and
// inter-phase turnaround — so the components sum to the operation's
// duration (clamped at zero when cross-process interval skew over-accounts).
type breakdown struct {
	Client, Network, Handler, Fsync time.Duration
}

func (b breakdown) sum() time.Duration { return b.Client + b.Network + b.Handler + b.Fsync }

// opStat is one analyzed operation: its root span, per-component breakdown,
// and the assembled tree for rendering.
type opStat struct {
	span obs.Span
	bd   breakdown
	node *obs.TraceNode
	// slowPhase is the phase with the largest quorum-closing reply offset;
	// closer its closing replica (-1 when the phase carried no RTT detail).
	slowPhase obs.Span
	closer    int64
}

// replicaStat tallies quorum participation for one replica across every
// phase that recorded per-replica RTTs.
type replicaStat struct {
	answered int // counted toward a quorum
	closer   int // was the quorum-completing reply
	missed   int // phase closed without it
	rttSum   time.Duration
}

// decompose analyzes one assembled operation tree.
func decompose(root *obs.TraceNode) opStat {
	op := opStat{span: root.Span, node: root, closer: -1}
	for _, ch := range root.Children {
		if ch.Span.Kind != "phase" {
			continue
		}
		p := ch.Span
		closer := closerOf(p)
		if p.LastReply > op.slowPhase.LastReply {
			op.slowPhase, op.closer = p, closer
		}
		// The closer's handle span, when the replica was traced.
		var handle *obs.TraceNode
		for _, h := range ch.Children {
			if h.Span.Kind == "handle" && (closer < 0 || h.Span.Node == closer) {
				handle = h
				break
			}
		}
		if handle == nil {
			op.bd.Network += p.LastReply
			continue
		}
		var wal time.Duration
		for _, g := range handle.Children {
			if g.Span.Kind == "wal-append" {
				wal += g.Span.Dur
			}
		}
		op.bd.Fsync += wal
		op.bd.Handler += maxDur(0, handle.Span.Dur-wal)
		op.bd.Network += maxDur(0, p.LastReply-handle.Span.Dur)
	}
	op.bd.Client = maxDur(0, op.span.Dur-op.bd.Network-op.bd.Handler-op.bd.Fsync)
	return op
}

// closerOf returns the replica whose reply completed the phase's quorum: the
// counted reply with the largest offset. -1 when the phase has no RTT map.
func closerOf(p obs.Span) int64 {
	closer, best := int64(-1), time.Duration(-1)
	for id, rtt := range p.ReplicaRTT {
		if rtt > best {
			closer, best = id, rtt
		}
	}
	return closer
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func report(w io.Writer, spans []obs.Span, st obs.StitchStats, top int) {
	kinds := make(map[string]int)
	for _, s := range spans {
		kinds[s.Kind]++
	}
	fmt.Fprintf(w, "spans: %d   traces: %d   ops: %d\n", len(spans), st.Traces, st.Ops)
	fmt.Fprintf(w, "stitch: %d/%d remote spans reach an operation (%.1f%%)\n",
		st.Stitched, st.Total, 100*st.Ratio())
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "  %-12s %d\n", k, kinds[k])
	}

	traces := obs.AssembleTraces(spans)
	var ops []opStat
	replicas := make(map[int64]*replicaStat)
	phases := 0
	for _, tr := range traces {
		if tr.Root == nil {
			continue
		}
		ops = append(ops, decompose(tr.Root))
		for _, ch := range tr.Root.Children {
			p := ch.Span
			if p.Kind != "phase" || len(p.ReplicaRTT) == 0 {
				continue
			}
			phases++
			closer := closerOf(p)
			for id, rtt := range p.ReplicaRTT {
				rs := replicas[id]
				if rs == nil {
					rs = &replicaStat{}
					replicas[id] = rs
				}
				rs.answered++
				rs.rttSum += rtt
				if id == closer {
					rs.closer++
				}
			}
			// A replica can handle every request yet never make a quorum
			// (its replies always arrive after the closer's). Its handle
			// spans are the only evidence — make sure it gets a table row.
			for _, h := range ch.Children {
				if h.Span.Kind == "handle" && replicas[h.Span.Node] == nil {
					replicas[h.Span.Node] = &replicaStat{}
				}
			}
		}
	}
	if len(ops) == 0 {
		fmt.Fprintln(w, "\nno operation spans — nothing to decompose")
		return
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].span.Dur > ops[j].span.Dur })

	// Aggregate critical path over every operation.
	var agg breakdown
	for _, op := range ops {
		agg.Client += op.bd.Client
		agg.Network += op.bd.Network
		agg.Handler += op.bd.Handler
		agg.Fsync += op.bd.Fsync
	}
	durs := make([]time.Duration, len(ops))
	for i, op := range ops {
		durs[i] = op.span.Dur
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	fmt.Fprintf(w, "\ncritical path across %d ops (p50 %s, p99 %s, max %s):\n",
		len(ops), fmtDur(pct(durs, 0.50)), fmtDur(pct(durs, 0.99)), fmtDur(durs[len(durs)-1]))
	printBreakdown(w, agg)

	p99 := ops[(len(ops)-1)*1/100] // ops sorted descending: index ~ worst 1%
	fmt.Fprintf(w, "\np99 operation: %s %s\n", opLabel(p99.span), fmtDur(p99.span.Dur))
	printBreakdown(w, p99.bd)
	if p99.slowPhase.Kind != "" {
		fmt.Fprintf(w, "  slowest phase: %s (quorum %d/%d closed at %s)\n",
			p99.slowPhase.Phase, p99.slowPhase.Quorum, p99.slowPhase.Targets, fmtDur(p99.slowPhase.LastReply))
		if p99.closer >= 0 {
			rs := replicas[p99.closer]
			total := rs.closer
			fmt.Fprintf(w, "  straggler: replica %d closed this quorum; it was the closer in %d/%d phases overall\n",
				p99.closer, total, phases)
		}
	}

	// Per-shard split, when the spans came from a sharded store (tagged by
	// shard.Tag; Span.Shard is group+1, 0 means untagged). Shows whether the
	// router spread operations — and their critical-path shape — evenly.
	shardOps := make(map[int][]opStat)
	for _, op := range ops {
		if op.span.Shard > 0 {
			shardOps[op.span.Shard-1] = append(shardOps[op.span.Shard-1], op)
		}
	}
	if len(shardOps) > 0 {
		groups := make([]int, 0, len(shardOps))
		for g := range shardOps {
			groups = append(groups, g)
		}
		sort.Ints(groups)
		untagged := len(ops)
		fmt.Fprintf(w, "\nper-shard operations (%d replica groups):\n", len(groups))
		fmt.Fprintf(w, "  %-6s %5s %10s %10s %10s %10s\n", "group", "ops", "p50", "p99", "network", "fsync")
		for _, g := range groups {
			gops := shardOps[g]
			untagged -= len(gops)
			gd := make([]time.Duration, len(gops))
			var gb breakdown
			for i, op := range gops {
				gd[i] = op.span.Dur
				gb.Client += op.bd.Client
				gb.Network += op.bd.Network
				gb.Handler += op.bd.Handler
				gb.Fsync += op.bd.Fsync
			}
			sort.Slice(gd, func(i, j int) bool { return gd[i] < gd[j] })
			fmt.Fprintf(w, "  %-6d %5d %10s %10s %10s %10s\n",
				g, len(gops), fmtDur(pct(gd, 0.50)), fmtDur(pct(gd, 0.99)), fmtDur(gb.Network), fmtDur(gb.Fsync))
		}
		if untagged > 0 {
			fmt.Fprintf(w, "  (%d operations carried no shard tag)\n", untagged)
		}
	}

	if len(replicas) > 0 {
		ids := make([]int64, 0, len(replicas))
		for id := range replicas {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		fmt.Fprintf(w, "\nreplica quorum participation (%d phases):\n", phases)
		fmt.Fprintf(w, "  %-8s %9s %7s %7s %10s\n", "replica", "answered", "closer", "missed", "mean rtt")
		for _, id := range ids {
			rs := replicas[id]
			rs.missed = phases - rs.answered
			mean := time.Duration(0)
			if rs.answered > 0 {
				mean = rs.rttSum / time.Duration(rs.answered)
			}
			fmt.Fprintf(w, "  %-8d %9d %7d %7d %10s\n", id, rs.answered, rs.closer, rs.missed, fmtDur(mean))
		}
	}

	if top > len(ops) {
		top = len(ops)
	}
	for i := 0; i < top; i++ {
		fmt.Fprintf(w, "\n#%d slowest operation:\n", i+1)
		renderFlame(w, ops[i].node)
	}
}

func printBreakdown(w io.Writer, b breakdown) {
	total := b.sum()
	row := func(name string, d time.Duration) {
		pctOf := 0.0
		if total > 0 {
			pctOf = 100 * float64(d) / float64(total)
		}
		fmt.Fprintf(w, "  %-18s %10s  %5.1f%%  %s\n", name, fmtDur(d), pctOf, bar(pctOf/100, 30))
	}
	row("client/queueing", b.Client)
	row("network", b.Network)
	row("replica handler", b.Handler)
	row("wal fsync", b.Fsync)
}

// pct returns the q-th percentile of sorted durations.
func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// renderFlame prints an operation's tree with each span's bar positioned and
// scaled against the operation interval — a text flamegraph.
func renderFlame(w io.Writer, root *obs.TraceNode) {
	const width = 32
	opStart, opDur := root.Span.Start, root.Span.Dur
	if opDur <= 0 {
		opDur = 1
	}
	var walk func(n *obs.TraceNode, depth int)
	walk = func(n *obs.TraceNode, depth int) {
		s := n.Span
		off := s.Start.Sub(opStart)
		lo := clamp(int(float64(off)/float64(opDur)*width), 0, width)
		hi := clamp(int(float64(off+s.Dur)/float64(opDur)*width), lo, width)
		if hi == lo && s.Dur > 0 {
			hi++ // every real interval shows at least one cell
			if hi > width {
				lo, hi = width-1, width
			}
		}
		lane := strings.Repeat(" ", lo) + strings.Repeat("#", hi-lo) + strings.Repeat(" ", width-hi)
		label := strings.Repeat("  ", depth) + spanLabel(s)
		fmt.Fprintf(w, "  %-46s %10s |%s|\n", trunc(label, 46), fmtDur(s.Dur), lane)
		const maxChildren = 16
		for i, ch := range n.Children {
			if i == maxChildren {
				fmt.Fprintf(w, "  %s… (+%d more)\n", strings.Repeat("  ", depth+1), len(n.Children)-maxChildren)
				break
			}
			walk(ch, depth+1)
		}
	}
	walk(root, 0)
}

func opLabel(s obs.Span) string {
	return fmt.Sprintf("%s(%s) client=%d", s.Kind, s.Reg, s.Node)
}

func spanLabel(s obs.Span) string {
	var l string
	switch s.Kind {
	case "read", "write":
		l = opLabel(s)
	case "phase":
		l = fmt.Sprintf("phase %s [q=%d/%d]", s.Phase, s.Quorum, s.Targets)
	case "net-send":
		l = fmt.Sprintf("net-send %d→%d", s.Node, s.Peer)
	case "net-recv":
		l = fmt.Sprintf("net-recv %d←%d", s.Node, s.Peer)
	default: // handle, wal-append, stale-reject
		l = fmt.Sprintf("%s @%d", s.Kind, s.Node)
	}
	if s.Err != "" {
		l += " ERR(" + s.Err + ")"
	}
	return l
}

func bar(frac float64, width int) string {
	n := clamp(int(frac*float64(width)+0.5), 0, width)
	return strings.Repeat("#", n)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func fmtDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", float64(d)/float64(time.Second))
	}
}
