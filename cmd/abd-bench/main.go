// Command abd-bench regenerates the evaluation's tables and figures
// (DESIGN.md §3) and prints them as aligned text, suitable for pasting into
// EXPERIMENTS.md.
//
// Usage:
//
//	abd-bench [-exp all|T1|T2|F1|F2|F3|T3|F4|F5|T4|T5|F6] [-quick] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp   = flag.String("exp", "all", "experiment id (T1..T5, F1..F6) or 'all'")
		quick = flag.Bool("quick", false, "smaller sweeps and op counts")
		seed  = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	opts := experiments.Options{Quick: *quick, Seed: *seed}

	var runners []experiments.Runner
	if strings.EqualFold(*exp, "all") {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			r, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "abd-bench: unknown experiment %q (want T1..T5, F1..F6, or all)\n", id)
				return 2
			}
			runners = append(runners, r)
		}
	}

	fmt.Printf("# ABD evaluation run: %d experiment(s), quick=%v, seed=%d\n\n", len(runners), *quick, *seed)
	for _, r := range runners {
		start := time.Now()
		tbl, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "abd-bench: %s: %v\n", r.ID, err)
			return 1
		}
		tbl.Format(os.Stdout)
		fmt.Printf("   (%s took %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
