// Command abd-bench regenerates the evaluation's tables and figures
// (DESIGN.md §3) and prints them as aligned text, suitable for pasting into
// EXPERIMENTS.md. The L1 experiment prints p50/p95/p99/max latency per
// operation kind from the internal/obs histograms; -trace-out additionally
// dumps its operation and phase spans as JSONL for offline analysis.
//
// Usage:
//
//	abd-bench [-exp all|<id>[,<id>...]] [-quick] [-seed N] [-trace-out spans.jsonl]
//
// The experiment menu (ids and aliases accepted by -exp, shown by -help) is
// generated from the experiments registry, so a newly registered experiment
// appears here without touching this command.
//
// TP (alias "throughput"), SH (alias "shards"), BY (alias "byz"), and AL
// (alias "alloc") also write a machine-readable report with -json; run
// those one at a time when -json is set, since each overwrites the file
// (see `make throughput`, `make shards`, `make byz`, `make alloc`). Every
// such report carries a shared envelope (schema id, Go toolchain, seed)
// that `abd-prof bench-diff` keys its regression gate on.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp      = flag.String("exp", "all", "experiment id ("+experiments.Menu()+") or 'all'")
		quick    = flag.Bool("quick", false, "smaller sweeps and op counts")
		seed     = flag.Int64("seed", 1, "simulation seed")
		traceOut = flag.String("trace-out", "", "write the traced experiments' spans as JSONL to this file")
		jsonOut  = flag.String("json", "", "write the machine-readable report (TP, SH, BY, AL experiments) to this file")
	)
	flag.Parse()

	opts := experiments.Options{Quick: *quick, Seed: *seed, JSONOut: *jsonOut}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "abd-bench: %v\n", err)
			return 1
		}
		defer f.Close()
		opts.TraceWriter = f
	}

	var runners []experiments.Runner
	if strings.EqualFold(*exp, "all") {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			r, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "abd-bench: unknown experiment %q (want %s, or all)\n", id, experiments.Menu())
				return 2
			}
			runners = append(runners, r)
		}
	}

	fmt.Printf("# ABD evaluation run: %d experiment(s), quick=%v, seed=%d\n\n", len(runners), *quick, *seed)
	for _, r := range runners {
		start := time.Now()
		tbl, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "abd-bench: %s: %v\n", r.ID, err)
			return 1
		}
		tbl.Format(os.Stdout)
		fmt.Printf("   (%s took %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
