package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"testing"

	"repro/internal/prof"
)

// fakePprofServer serves real runtime profiles under /debug/pprof/, the
// same surface abd-node -pprof mounts.
func fakePprofServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	for _, name := range []string{"heap", "goroutine", "allocs"} {
		p := pprof.Lookup(name)
		if p == nil {
			t.Fatalf("no %s profile", name)
		}
		mux.HandleFunc("/debug/pprof/"+name, func(w http.ResponseWriter, r *http.Request) {
			_ = p.WriteTo(w, 0)
		})
	}
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestCaptureFromEndpoints(t *testing.T) {
	srv := fakePprofServer(t)
	addr := strings.TrimPrefix(srv.URL, "http://")
	out := t.TempDir()

	var stdout, stderr bytes.Buffer
	code := run([]string{"capture", "-addrs", addr, "-out", out,
		"-profiles", "heap,goroutine"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("capture exit %d, stderr: %s", code, stderr.String())
	}
	dir := filepath.Join(out, strings.ReplaceAll(addr, ":", "_"))
	for _, name := range []string{"heap.pprof", "goroutine.pprof"} {
		buf, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("capture wrote no %s: %v", name, err)
		}
		if _, err := prof.Parse(buf); err != nil {
			t.Fatalf("%s does not parse: %v", name, err)
		}
	}
}

// TestCaptureDeadNode: one live node, one dead address. The live node's
// profiles land on disk; the dead one is reported and the exit is nonzero.
func TestCaptureDeadNode(t *testing.T) {
	srv := fakePprofServer(t)
	live := strings.TrimPrefix(srv.URL, "http://")
	dead := "127.0.0.1:1" // reserved port, connection refused immediately
	out := t.TempDir()

	var stdout, stderr bytes.Buffer
	code := run([]string{"capture", "-addrs", live + "," + dead, "-out", out,
		"-profiles", "heap"}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("capture with a dead node exited 0")
	}
	if _, err := os.Stat(filepath.Join(out, strings.ReplaceAll(live, ":", "_"), "heap.pprof")); err != nil {
		t.Fatalf("live node's profile missing: %v", err)
	}
	if !strings.Contains(stderr.String(), dead) {
		t.Fatalf("stderr does not name the dead node: %s", stderr.String())
	}
}

// TestCaptureRejectsNonProfile: an endpoint answering HTML must not leave a
// bogus .pprof on disk.
func TestCaptureRejectsNonProfile(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "<html>not a profile</html>")
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")
	out := t.TempDir()

	var stdout, stderr bytes.Buffer
	code := run([]string{"capture", "-addrs", addr, "-out", out, "-profiles", "heap"}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("capture of an HTML page exited 0")
	}
	if _, err := os.Stat(filepath.Join(out, strings.ReplaceAll(addr, ":", "_"), "heap.pprof")); err == nil {
		t.Fatal("bogus profile written to disk")
	}
}

func TestDiffCommand(t *testing.T) {
	grab := func(path string) {
		var buf bytes.Buffer
		if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	oldP, newP := filepath.Join(dir, "old.pprof"), filepath.Join(dir, "new.pprof")
	grab(oldP)
	grab(newP)

	var stdout, stderr bytes.Buffer
	code := run([]string{"diff", "-type", "inuse_space", "-top", "5", oldP, newP}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("diff exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "inuse_space") || !strings.Contains(stdout.String(), "flat-delta") {
		t.Fatalf("diff output malformed: %s", stdout.String())
	}
}

func TestAttrCommand(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, `# HELP abd_prof_alloc_bytes_total cumulative heap bytes allocated`)
		fmt.Fprintln(w, `abd_prof_alloc_bytes_total{node="0"} 12345`)
		fmt.Fprintln(w, `abd_prof_goroutines{node="0"} 17`)
		fmt.Fprintln(w, `abd_other_series 1`)
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	var stdout, stderr bytes.Buffer
	code := run([]string{"attr", "-addr", addr}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("attr exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, `abd_prof_alloc_bytes_total{node="0"}`) || !strings.Contains(out, "12345") {
		t.Fatalf("attr output missing series: %s", out)
	}
	if strings.Contains(out, "abd_other_series") {
		t.Fatalf("attr output leaked non-prof series: %s", out)
	}

	// A node without the series is an error, not an empty table.
	empty := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "abd_node_uptime_seconds 1")
	}))
	defer empty.Close()
	code = run([]string{"attr", "-addr", strings.TrimPrefix(empty.URL, "http://")}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("attr against a prof-less node exited 0")
	}
}

// benchReport is a miniature throughput-shaped report for gate tests.
func benchReport(opsPerSec, speedup, allocsPerOp float64, durationMS int, goVersion string) string {
	return fmt.Sprintf(`{
  "schema": "abd-bench/throughput/v1",
  "go": %q,
  "seed": 1,
  "nodes": 5,
  "duration_ms": %d,
  "passes": [
    {"name": "off", "ops_per_sec": 1000, "p50_us": 100, "allocs_per_op": 50},
    {"name": "on", "ops_per_sec": %g, "p50_us": 80, "allocs_per_op": %g}
  ],
  "speedup": %g
}`, goVersion, durationMS, opsPerSec, allocsPerOp, speedup)
}

func writeReport(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchDiffSelfIsClean(t *testing.T) {
	base := writeReport(t, "base.json", benchReport(2000, 2.0, 100, 2000, "go1.24.0"))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"bench-diff", base, base}, &stdout, &stderr); code != 0 {
		t.Fatalf("self-diff exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "no gated regressions") {
		t.Fatalf("self-diff output: %s", stdout.String())
	}
}

// TestBenchDiffCatchesRegression is the acceptance case: a synthetic 20%
// ops/sec drop (with matching speedup drop) must fail the default 10% gate.
func TestBenchDiffCatchesRegression(t *testing.T) {
	base := writeReport(t, "base.json", benchReport(2000, 2.0, 100, 2000, "go1.24.0"))
	bad := writeReport(t, "bad.json", benchReport(1600, 1.6, 100, 2000, "go1.24.0"))
	var stdout, stderr bytes.Buffer
	code := run([]string{"bench-diff", base, bad}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("20%% regression exit %d, want 1; stdout: %s", code, stdout.String())
	}
	for _, metric := range []string{"ops_per_sec", "speedup"} {
		if !strings.Contains(stderr.String(), metric) {
			t.Errorf("regression summary missing %s: %s", metric, stderr.String())
		}
	}

	// The same drop within a generous tolerance passes.
	code = run([]string{"bench-diff", "-tolerance", "0.25", base, bad}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("20%% drop under 25%% tolerance exit %d", code)
	}

	// An improvement never fails, at any tolerance.
	good := writeReport(t, "good.json", benchReport(3000, 3.0, 80, 2000, "go1.24.0"))
	code = run([]string{"bench-diff", "-tolerance", "0.01", base, good}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("improvement exit %d, want 0", code)
	}
}

// TestBenchDiffCrossConfig: a -quick run (different duration_ms) demotes
// throughput metrics to informational, but per-op allocation metrics still
// gate — that is the CI quick-vs-baseline contract.
func TestBenchDiffCrossConfig(t *testing.T) {
	base := writeReport(t, "base.json", benchReport(2000, 2.0, 100, 2000, "go1.24.0"))

	// Throughput collapsed but it is a shorter run: informational only.
	quick := writeReport(t, "quick.json", benchReport(500, 1.2, 100, 400, "go1.24.0"))
	var stdout, stderr bytes.Buffer
	code := run([]string{"bench-diff", base, quick}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("cross-config throughput drop exit %d, want 0; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "config mismatch") {
		t.Fatalf("no config-mismatch note: %s", stdout.String())
	}

	// But an allocation regression fails even cross-config.
	leaky := writeReport(t, "leaky.json", benchReport(500, 1.2, 150, 400, "go1.24.0"))
	code = run([]string{"bench-diff", base, leaky}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("cross-config allocs/op regression exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "allocs_per_op") {
		t.Fatalf("regression summary missing allocs_per_op: %s", stderr.String())
	}

	// A Go toolchain skew demotes even the allocation gate.
	otherGo := writeReport(t, "othergo.json", benchReport(500, 1.2, 150, 400, "go1.23.0"))
	code = run([]string{"bench-diff", base, otherGo}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("cross-toolchain diff exit %d, want 0; stderr: %s", code, stderr.String())
	}
}

// TestBenchDiffCommittedBaselines: every committed BENCH file self-diffs
// clean — the gate never cries wolf on an unchanged tree.
func TestBenchDiffCommittedBaselines(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil || len(matches) == 0 {
		t.Skipf("no committed BENCH files: %v", err)
	}
	for _, path := range matches {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"bench-diff", path, path}, &stdout, &stderr); code != 0 {
			t.Errorf("%s self-diff exit %d: %s", path, code, stderr.String())
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no args exit %d, want 2", code)
	}
	if code := run([]string{"bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown subcommand exit %d, want 2", code)
	}
	if code := run([]string{"bench-diff", "only-one.json"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bench-diff one arg exit %d, want 2", code)
	}
	if code := run([]string{"capture"}, &stdout, &stderr); code != 2 {
		t.Fatalf("capture without -addrs exit %d, want 2", code)
	}
}
