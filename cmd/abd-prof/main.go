// Command abd-prof is the performance-observability analyzer. Four
// subcommands:
//
//	abd-prof capture -addrs host:port[,host:port...] [-out dir] \
//	         [-profiles heap,goroutine,allocs] [-seconds 5]
//	  Pull profiles from each node's /debug/pprof endpoints (abd-node
//	  -pprof) into out/<addr>/<profile>.pprof. Dead nodes are reported and
//	  skipped; the exit code is nonzero if any node failed.
//
//	abd-prof diff [-type inuse_space] [-top 15] old.pprof new.pprof
//	  Print the top functions by absolute flat delta between two profiles
//	  of the same kind, with cumulative deltas alongside — where the
//	  allocation or CPU budget moved between two captures.
//
//	abd-prof attr -addr host:port
//	  Render the node's abd_prof_* runtime attribution series (allocation
//	  rate, GC pauses, scheduling latency, flight-recorder counters) as a
//	  table, scraped from /metrics.
//
//	abd-prof bench-diff [-tolerance 0.1] old.json new.json
//	  Compare two BENCH JSON reports benchstat-style and exit 1 if a gated
//	  metric regressed beyond the tolerance. Per-op allocation metrics gate
//	  whenever both reports come from the same Go toolchain; throughput and
//	  latency metrics additionally require an identical workload
//	  configuration (a -quick run vs a full baseline only gates per-op
//	  allocations). This is the CI perf-regression gate.
//
// Exit codes: 0 success, 1 failure or regression, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/prof"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "capture":
		return runCapture(args[1:], stdout, stderr)
	case "diff":
		return runDiff(args[1:], stdout, stderr)
	case "attr":
		return runAttr(args[1:], stdout, stderr)
	case "bench-diff":
		return runBenchDiffCmd(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "abd-prof: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprintf(w, `usage:
  abd-prof capture -addrs host:port[,...] [-out dir] [-profiles heap,goroutine,allocs] [-seconds 5]
  abd-prof diff [-type inuse_space] [-top 15] old.pprof new.pprof
  abd-prof attr -addr host:port
  abd-prof bench-diff [-tolerance 0.1] old.json new.json
`)
}

// ---- capture ----

func runCapture(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("capture", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addrs := fs.String("addrs", "", "comma-separated metrics addresses (host:port) of nodes running with -pprof")
	out := fs.String("out", "profiles", "output directory (one subdirectory per node)")
	profiles := fs.String("profiles", "heap,goroutine", "comma-separated profile names under /debug/pprof (use profile?seconds=N via -seconds for CPU)")
	seconds := fs.Int("seconds", 5, "CPU profile duration when 'profile' is requested")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *addrs == "" {
		fmt.Fprintln(stderr, "abd-prof capture: -addrs required")
		return 2
	}
	failed := 0
	for _, addr := range strings.Split(*addrs, ",") {
		addr = strings.TrimSpace(addr)
		dir := filepath.Join(*out, strings.ReplaceAll(addr, ":", "_"))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintf(stderr, "abd-prof capture: %v\n", err)
			return 1
		}
		for _, name := range strings.Split(*profiles, ",") {
			name = strings.TrimSpace(name)
			url := fmt.Sprintf("http://%s/debug/pprof/%s", addr, name)
			timeout := 10 * time.Second
			if name == "profile" {
				url += fmt.Sprintf("?seconds=%d", *seconds)
				timeout += time.Duration(*seconds) * time.Second
			}
			path := filepath.Join(dir, name+".pprof")
			if err := fetchTo(url, path, timeout); err != nil {
				fmt.Fprintf(stderr, "abd-prof capture: %s: %v\n", addr, err)
				failed++
				break // a dead node fails once, not once per profile
			}
			fmt.Fprintf(stdout, "captured %s -> %s\n", url, path)
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

func fetchTo(url, path string, timeout time.Duration) error {
	cli := &http.Client{Timeout: timeout}
	resp, err := cli.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	// A sanity parse before writing: catches scraping an HTML error page.
	if _, err := prof.Parse(buf); err != nil {
		return fmt.Errorf("%s: not a pprof profile: %w", url, err)
	}
	return os.WriteFile(path, buf, 0o644)
}

// ---- diff ----

func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sampleType := fs.String("type", "", "sample type to diff (e.g. inuse_space, alloc_objects; default: the profile's default)")
	top := fs.Int("top", 15, "rows to print")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "abd-prof diff: want exactly two profile files")
		return 2
	}
	oldP, err := parseProfileFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "abd-prof diff: %v\n", err)
		return 1
	}
	newP, err := parseProfileFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "abd-prof diff: %v\n", err)
		return 1
	}
	rows, vt, err := prof.DiffTop(oldP, newP, *sampleType, *top)
	if err != nil {
		fmt.Fprintf(stderr, "abd-prof diff: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "sample type %s/%s: %s -> %s\n", vt.Type, vt.Unit, fs.Arg(0), fs.Arg(1))
	fmt.Fprintf(stdout, "%14s %14s %14s %14s  %s\n", "flat-old", "flat-new", "flat-delta", "cum-delta", "function")
	for _, r := range rows {
		fmt.Fprintf(stdout, "%14d %14d %+14d %+14d  %s\n",
			r.OldFlat, r.NewFlat, r.FlatDelta(), r.CumDelta(), r.Func)
	}
	return 0
}

func parseProfileFile(path string) (*prof.Profile, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return prof.Parse(buf)
}

// ---- attr ----

func runAttr(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("attr", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "node metrics address (host:port)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *addr == "" {
		fmt.Fprintln(stderr, "abd-prof attr: -addr required")
		return 2
	}
	cli := &http.Client{Timeout: 10 * time.Second}
	resp, err := cli.Get(fmt.Sprintf("http://%s/metrics", *addr))
	if err != nil {
		fmt.Fprintf(stderr, "abd-prof attr: %v\n", err)
		return 1
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintf(stderr, "abd-prof attr: %v\n", err)
		return 1
	}
	rows := attrRows(string(body))
	if len(rows) == 0 {
		fmt.Fprintf(stderr, "abd-prof attr: no abd_prof_* series at %s (old node build?)\n", *addr)
		return 1
	}
	fmt.Fprintf(stdout, "runtime attribution for %s (stats-epoch gauges + cumulative counters):\n", *addr)
	for _, r := range rows {
		fmt.Fprintf(stdout, "  %-44s %s\n", r[0], r[1])
	}
	return 0
}

// attrRows extracts the abd_prof_* sample lines from a Prometheus text
// exposition, as (series, value) pairs in name order.
func attrRows(metrics string) [][2]string {
	var rows [][2]string
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.HasPrefix(line, "abd_prof_") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			continue
		}
		rows = append(rows, [2]string{line[:idx], line[idx+1:]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i][0] < rows[j][0] })
	return rows
}

// ---- bench-diff ----

func runBenchDiffCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench-diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tolerance := fs.Float64("tolerance", 0.1, "relative worsening allowed on gated metrics before failing")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "abd-prof bench-diff: want exactly two JSON files")
		return 2
	}
	d, err := runBenchDiff(fs.Arg(0), fs.Arg(1), *tolerance)
	if err != nil {
		fmt.Fprintf(stderr, "abd-prof bench-diff: %v\n", err)
		return 1
	}

	if len(d.crossConfig) > 0 {
		fmt.Fprintf(stdout, "config mismatch on %s: throughput/latency metrics informational, per-op allocation metrics still gated\n",
			strings.Join(d.crossConfig, ", "))
	}
	if d.goSkew {
		fmt.Fprintln(stdout, "go toolchain mismatch: per-op allocation metrics demoted to informational (compiler-dependent)")
	}
	fmt.Fprintf(stdout, "%-48s %14s %14s %9s  %s\n", "metric", "old", "new", "delta", "gate")
	for _, r := range d.rows {
		verdict := ""
		if r.Gated {
			verdict = "ok"
		}
		if r.Regress {
			verdict = "REGRESSION"
		}
		fmt.Fprintf(stdout, "%-48s %14.4g %14.4g %+8.1f%%  %s\n",
			r.Path, r.Old, r.New, r.deltaPct(), verdict)
	}
	if regs := d.regressions(); len(regs) > 0 {
		fmt.Fprintf(stderr, "abd-prof bench-diff: %d metric(s) regressed beyond %.0f%%:\n", len(regs), *tolerance*100)
		for _, r := range regs {
			fmt.Fprintf(stderr, "  %s: %.4g -> %.4g (%+.1f%%)\n", r.Path, r.Old, r.New, r.deltaPct())
		}
		return 1
	}
	fmt.Fprintf(stdout, "no gated regressions (tolerance %.0f%%)\n", *tolerance*100)
	return 0
}
