package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// bench-diff compares two BENCH JSON reports benchstat-style. The files are
// walked as JSON trees in parallel; numeric leaves whose key is a known
// performance metric are compared under a relative tolerance and a known
// better-direction, everything else is informational. Two gate tiers:
//
//   - gateAlways: per-op allocation metrics. Stable across run duration, so
//     they gate even when the two reports ran different configurations
//     (e.g. CI's -quick run vs the committed full baseline).
//   - gateSameConfig: throughput and latency metrics. Only meaningful when
//     the workload shape matches, so any mismatch on a config key (nodes,
//     workers, duration_ms, ...) demotes them to informational.
//
// Array elements are matched by their "name" (or "shards") key when
// present, so pass lists align by identity, not position.

// metricDir says which direction is an improvement.
type metricDir int

const (
	lowerIsBetter metricDir = iota
	higherIsBetter
)

// gateAlways metrics gate regardless of config mismatches.
var gateAlways = map[string]metricDir{
	"allocs_per_op": lowerIsBetter,
	"bytes_per_op":  lowerIsBetter,
}

// gateSameConfig metrics gate only when every config key matches.
var gateSameConfig = map[string]metricDir{
	"ops_per_sec":      higherIsBetter,
	"p50_us":           lowerIsBetter,
	"p99_us":           lowerIsBetter,
	"speedup":          higherIsBetter,
	"scaling_3x":       higherIsBetter,
	"fsyncs_per_write": lowerIsBetter,
}

// configKeys describe the workload shape; a mismatch on any of them means
// the two reports are not the same experiment configuration.
var configKeys = map[string]bool{
	"schema": true, "go": true, "seed": true,
	"nodes": true, "workers": true, "clients": true, "registers": true,
	"duration_ms": true, "per_group": true, "stores": true,
	"fsync_delay_ms": true, "batch_max": true,
	"n": true, "f": true, "writers": true, "readers": true,
	"ops_per_worker": true, "payload_bytes": true,
}

// diffRow is one compared numeric leaf.
type diffRow struct {
	Path     string
	Old, New float64
	Gated    bool
	Regress  bool
}

func (r diffRow) deltaPct() float64 {
	if r.Old == 0 {
		if r.New == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (r.New - r.Old) / math.Abs(r.Old) * 100
}

type benchDiff struct {
	tolerance float64
	// crossConfig is set when any config key differs: gateSameConfig
	// metrics become informational.
	crossConfig []string
	// goSkew is set when the two reports were produced by different Go
	// toolchains. Allocation counts are compiler-dependent, so even the
	// gateAlways per-op metrics demote to informational — diff numbers
	// across compilers describe the compilers, not the code under test.
	goSkew bool
	rows   []diffRow
}

func runBenchDiff(oldPath, newPath string, tolerance float64) (*benchDiff, error) {
	oldTree, err := loadJSON(oldPath)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", oldPath, err)
	}
	newTree, err := loadJSON(newPath)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", newPath, err)
	}
	d := &benchDiff{tolerance: tolerance}
	d.scanConfig("", oldTree, newTree)
	d.walk("", oldTree, newTree)
	sort.Slice(d.rows, func(i, j int) bool { return d.rows[i].Path < d.rows[j].Path })
	return d, nil
}

func loadJSON(path string) (any, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tree any
	if err := json.Unmarshal(buf, &tree); err != nil {
		return nil, err
	}
	return tree, nil
}

// scanConfig records every config-key mismatch anywhere in the two trees.
func (d *benchDiff) scanConfig(path string, oldV, newV any) {
	switch o := oldV.(type) {
	case map[string]any:
		n, ok := newV.(map[string]any)
		if !ok {
			return
		}
		for k, ov := range o {
			nv, ok := n[k]
			if !ok {
				continue
			}
			if configKeys[k] && fmt.Sprint(ov) != fmt.Sprint(nv) {
				d.crossConfig = append(d.crossConfig, joinPath(path, k))
				if k == "go" {
					d.goSkew = true
				}
				continue
			}
			d.scanConfig(joinPath(path, k), ov, nv)
		}
	case []any:
		n, ok := newV.([]any)
		if !ok {
			return
		}
		forMatchedElems(o, n, func(label string, ov, nv any) {
			d.scanConfig(joinPath(path, label), ov, nv)
		})
	}
}

// walk compares the trees and collects rows for every metric leaf present
// in both.
func (d *benchDiff) walk(path string, oldV, newV any) {
	switch o := oldV.(type) {
	case map[string]any:
		n, ok := newV.(map[string]any)
		if !ok {
			return
		}
		keys := make([]string, 0, len(o))
		for k := range o {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			nv, ok := n[k]
			if !ok {
				continue
			}
			if of, ok1 := asFloat(o[k]); ok1 {
				if nf, ok2 := asFloat(nv); ok2 {
					d.compare(joinPath(path, k), k, of, nf)
					continue
				}
			}
			d.walk(joinPath(path, k), o[k], nv)
		}
	case []any:
		n, ok := newV.([]any)
		if !ok {
			return
		}
		forMatchedElems(o, n, func(label string, ov, nv any) {
			d.walk(joinPath(path, label), ov, nv)
		})
	}
}

// forMatchedElems pairs array elements by their "name" or "shards" key when
// the elements are objects carrying one, falling back to index alignment.
func forMatchedElems(o, n []any, f func(label string, ov, nv any)) {
	key := elemKey(o)
	if key == "" {
		for i := 0; i < len(o) && i < len(n); i++ {
			f(fmt.Sprintf("[%d]", i), o[i], n[i])
		}
		return
	}
	byID := make(map[string]any, len(n))
	for _, el := range n {
		if m, ok := el.(map[string]any); ok {
			byID[fmt.Sprint(m[key])] = el
		}
	}
	for _, el := range o {
		m, ok := el.(map[string]any)
		if !ok {
			continue
		}
		id := fmt.Sprint(m[key])
		if nv, ok := byID[id]; ok {
			f(fmt.Sprintf("[%s=%s]", key, id), el, nv)
		}
	}
}

func elemKey(elems []any) string {
	for _, candidate := range []string{"name", "shards"} {
		all := len(elems) > 0
		for _, el := range elems {
			m, ok := el.(map[string]any)
			if !ok || m[candidate] == nil {
				all = false
				break
			}
		}
		if all {
			return candidate
		}
	}
	return ""
}

func (d *benchDiff) compare(path, key string, oldF, newF float64) {
	dir, gated := gateAlways[key]
	if gated {
		gated = !d.goSkew
	} else {
		if sdir, ok := gateSameConfig[key]; ok {
			dir = sdir
			gated = len(d.crossConfig) == 0
		} else {
			d.rows = append(d.rows, diffRow{Path: path, Old: oldF, New: newF})
			return
		}
	}
	row := diffRow{Path: path, Old: oldF, New: newF, Gated: gated}
	if gated && oldF != 0 {
		worse := newF - oldF // positive is worse for lowerIsBetter
		if dir == higherIsBetter {
			worse = oldF - newF
		}
		if worse/math.Abs(oldF) > d.tolerance {
			row.Regress = true
		}
	}
	d.rows = append(d.rows, row)
}

func (d *benchDiff) regressions() []diffRow {
	var out []diffRow
	for _, r := range d.rows {
		if r.Regress {
			out = append(out, r)
		}
	}
	return out
}

func joinPath(base, k string) string {
	if base == "" {
		return k
	}
	if strings.HasPrefix(k, "[") {
		return base + k
	}
	return base + "." + k
}

func asFloat(v any) (float64, bool) {
	f, ok := v.(float64)
	return f, ok
}
