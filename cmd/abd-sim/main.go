// Command abd-sim runs a scripted scenario on the simulated network:
// a concurrent read/write workload against an ABD cluster, with an optional
// fault schedule, history recording, and linearizability checking.
//
// Usage:
//
//	abd-sim -n 5 -writers 2 -readers 3 -ops 20 \
//	        -faults "crash:0@50ms; partition:1,2|3,4@100ms; heal@200ms" \
//	        -check -out history.json
//
// The fault script syntax is documented in internal/failure. Operations
// that cannot reach a quorum during a fault window are recorded as pending
// (crashed) and the run continues — exactly how the model treats them.
//
// With -byz F the run becomes a Byzantine scenario: the last F replicas
// actively fabricate max-tags on every read query, every client validates
// reads with WithByzantine(F) (masking quorums, f+1 vouching; requires
// n >= 4F+1), the linearizability check is forced on, and the per-register
// verdicts plus the suspected-liar counters are printed:
//
//	abd-sim -byz 1 -n 5
//
// In nemesis mode -byz F instead runs the cluster in the nemesis's
// Byzantine mode: chaos-layer liars on the real TCP network driven by a
// generated schedule (or byz:<node>:<mode> script actions in -faults).
//
// With -nemesis the scenario instead runs on a real in-process TCP cluster
// (persistent replicas over tcpnet, chaos fault injection, crash+restart
// from the WAL) and the history is always checked:
//
//	abd-sim -nemesis -seed 101
//	abd-sim -nemesis -faults "faults:*:drop=0.3@100ms; crash:2@1s; recover:2@2s"
//
// In nemesis mode -faults may additionally use the chaos events (faults:,
// reset:) and reference client ids (9000, 9001, ...); when -faults is
// empty a schedule is generated deterministically from -seed.
//
// With -groups G (nemesis only) the cluster becomes G independent replica
// groups of n replicas each behind sharded stores (internal/shard): the
// generated schedule faults two groups at once, the linearizability verdict
// is per register, and the register→group map is printed.
//
//	abd-sim -nemesis -groups 3 -seed 404
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/history"
	"repro/internal/lincheck"
	"repro/internal/nemesis"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/types"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		n        = flag.Int("n", 5, "replica count")
		writers  = flag.Int("writers", 2, "concurrent writer clients")
		readers  = flag.Int("readers", 3, "concurrent reader clients")
		ops      = flag.Int("ops", 20, "operations per client")
		regs     = flag.Int("regs", 0, "number of registers the workload spreads over (0 = auto: 1, or 2x groups in sharded nemesis mode)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		minDelay = flag.Duration("min-delay", 0, "min one-way message delay")
		maxDelay = flag.Duration("max-delay", 2*time.Millisecond, "max one-way message delay")
		faults   = flag.String("faults", "", "fault script (see internal/failure)")
		mode     = flag.String("mode", "atomic", "protocol variant: atomic | skip-unanimous | regular")
		check    = flag.Bool("check", false, "run the linearizability checker on the history")
		out      = flag.String("out", "", "write the history as JSON lines to this file")
		opT      = flag.Duration("op-timeout", 2*time.Second, "per-operation deadline")
		nem      = flag.Bool("nemesis", false, "run on a real TCP cluster with chaos injection and crash+restart (see internal/nemesis)")
		groups   = flag.Int("groups", 1, "nemesis mode: replica groups (shards) of n replicas each behind sharded stores")
		byz      = flag.Int("byz", 0, "Byzantine faults to tolerate: this many replicas lie (fabricated max-tags) and clients validate reads with WithByzantine (requires n >= 4*byz+1)")
		traceOut = flag.String("trace-out", "", "nemesis mode: write every collected span as JSONL to this file (analyze with abd-trace)")
	)
	flag.Parse()

	if *byz > 0 && *n < 4**byz+1 {
		fmt.Fprintf(os.Stderr, "abd-sim: -byz %d needs n >= %d replicas (one-round f+1 validation), got -n %d\n",
			*byz, 4**byz+1, *n)
		return 2
	}
	if *nem {
		return runNemesis(*n, *groups, *writers, *readers, *ops, *regs, *seed, *byz, *faults, *out, *traceOut)
	}
	if *traceOut != "" {
		fmt.Fprintln(os.Stderr, "abd-sim: -trace-out requires -nemesis")
		return 2
	}
	if *groups > 1 {
		fmt.Fprintln(os.Stderr, "abd-sim: -groups requires -nemesis")
		return 2
	}
	if *regs <= 0 {
		*regs = 1
	}

	var copts []core.ClientOption
	switch *mode {
	case "atomic":
	case "skip-unanimous":
		copts = append(copts, core.WithSkipUnanimousWriteBack())
	case "regular":
		copts = append(copts, core.WithUnsafeNoWriteBack())
	default:
		fmt.Fprintf(os.Stderr, "abd-sim: unknown mode %q\n", *mode)
		return 2
	}
	if *byz > 0 {
		if *mode == "regular" {
			fmt.Fprintln(os.Stderr, "abd-sim: -byz needs the write-back (it repairs honest laggards); -mode regular is incompatible")
			return 2
		}
		copts = append(copts, core.WithByzantine(*byz))
		// A Byzantine run without the checker proves nothing: force it on.
		*check = true
	}

	sched, err := failure.Parse(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "abd-sim: %v\n", err)
		return 2
	}

	net := netsim.New(netsim.Config{Seed: *seed, MinDelay: *minDelay, MaxDelay: *maxDelay})
	defer net.Close()
	ids := make([]types.NodeID, *n)
	for i := 0; i < *n; i++ {
		ids[i] = types.NodeID(i)
		// The last -byz replicas are the lying minority: they fabricate an
		// enormous max-tag on every read query — the strongest attack on a
		// max-timestamp read protocol.
		if *n-i <= *byz {
			liar := core.NewByzantineReplica(ids[i], net.Node(ids[i]), core.ByzFabricate, *seed)
			liar.Start()
			defer liar.Stop()
			fmt.Printf("abd-sim: replica %d is Byzantine (fabricate)\n", i)
			continue
		}
		r := core.NewReplica(ids[i], net.Node(ids[i]))
		r.Start()
		defer r.Stop()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	go func() {
		if err := sched.Run(ctx, net); err != nil && ctx.Err() == nil {
			fmt.Fprintf(os.Stderr, "abd-sim: fault schedule: %v\n", err)
		}
	}()

	rec := history.NewRecorder()
	var wg sync.WaitGroup
	var pendingOps, okOps int64
	var mu sync.Mutex

	nextID := types.NodeID(10000)
	var allClients []*core.Client
	mkClient := func() (*core.Client, error) {
		id := nextID
		nextID++
		cli, err := core.NewClient(id, net.Node(id), ids, copts...)
		if err == nil {
			allClients = append(allClients, cli)
		}
		return cli, err
	}

	start := time.Now()
	for w := 0; w < *writers; w++ {
		cli, err := mkClient()
		if err != nil {
			fmt.Fprintf(os.Stderr, "abd-sim: %v\n", err)
			return 1
		}
		defer cli.Close()
		wg.Add(1)
		go func(id int, cli *core.Client) {
			defer wg.Done()
			for j := 0; j < *ops; j++ {
				reg := fmt.Sprintf("x%d", j%*regs)
				val := []byte(fmt.Sprintf("w%d-%d", id, j))
				p := rec.BeginWriteReg(id, reg, val)
				octx, ocancel := context.WithTimeout(ctx, *opT)
				err := cli.Write(octx, reg, val)
				ocancel()
				if err != nil {
					p.Crash()
					mu.Lock()
					pendingOps++
					mu.Unlock()
					continue
				}
				p.EndWrite()
				mu.Lock()
				okOps++
				mu.Unlock()
			}
		}(w, cli)
	}
	for r := 0; r < *readers; r++ {
		cli, err := mkClient()
		if err != nil {
			fmt.Fprintf(os.Stderr, "abd-sim: %v\n", err)
			return 1
		}
		defer cli.Close()
		wg.Add(1)
		go func(id int, cli *core.Client) {
			defer wg.Done()
			for j := 0; j < *ops; j++ {
				reg := fmt.Sprintf("x%d", j%*regs)
				p := rec.BeginReadReg(id, reg)
				octx, ocancel := context.WithTimeout(ctx, *opT)
				v, err := cli.Read(octx, reg)
				ocancel()
				if err != nil {
					p.Crash()
					mu.Lock()
					pendingOps++
					mu.Unlock()
					continue
				}
				p.EndRead(v)
				mu.Lock()
				okOps++
				mu.Unlock()
			}
		}(*writers+r, cli)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := net.Stats()
	fmt.Printf("abd-sim: %d ok, %d pending/timed-out ops in %v (%d messages sent, %d dropped)\n",
		okOps, pendingOps, elapsed.Round(time.Millisecond), st.Sent, st.Dropped)

	// Latency profile, merged over every client's obs histograms. Only
	// completed operations record, so the pending ops above are absent.
	var lat core.LatencySnapshot
	for _, cli := range allClients {
		lat = lat.Merge(cli.Latency())
	}
	row := func(kind string, s obs.HistSnapshot) {
		if s.Count == 0 {
			return
		}
		fmt.Printf("  %-22s %6d  p50=%-9v p95=%-9v p99=%-9v max=%v\n",
			kind, s.Count, s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99), s.MaxValue())
	}
	fmt.Printf("abd-sim: latency over %d client(s):\n", len(allClients))
	row("read", lat.Read)
	row("write", lat.Write)
	row("phase: query", lat.PhaseQuery)
	row("phase: update/wb", lat.PhaseUpdate)
	row("net one-way delay", st.Delay)

	histOps := rec.Ops()
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "abd-sim: %v\n", err)
			return 1
		}
		if err := history.WriteJSON(f, histOps); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "abd-sim: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "abd-sim: %v\n", err)
			return 1
		}
		fmt.Printf("abd-sim: history (%d ops) written to %s\n", len(histOps), *out)
	}

	if *byz > 0 {
		var m core.MetricsSnapshot
		for _, cli := range allClients {
			m = m.Merge(cli.Metrics())
		}
		fmt.Printf("abd-sim: byzantine validation (f=%d): suspect_rejects=%d confirm_rounds=%d mask_retries=%d\n",
			*byz, m.ByzRejects, m.ByzConfirms, m.MaskRetries)
	}

	if *check {
		results := lincheck.CheckRegisters(histOps, lincheck.Config{Timeout: time.Minute})
		outcome := lincheck.AllLinearizable(results)
		if *byz > 0 {
			// The Byzantine verdict is per register: print each one.
			regNames := make([]string, 0, len(results))
			for reg := range results {
				regNames = append(regNames, reg)
			}
			sort.Strings(regNames)
			for _, reg := range regNames {
				fmt.Printf("abd-sim: register %-8q %s\n", reg, results[reg].Outcome)
			}
		}
		fmt.Printf("abd-sim: history of %d ops over %d register(s) is %s\n",
			len(histOps), len(results), outcome)
		if outcome == lincheck.NotLinearizable {
			for reg, res := range results {
				if res.Outcome == lincheck.NotLinearizable {
					fmt.Printf("abd-sim: register %q NOT linearizable\n", reg)
				}
			}
			return 1
		}
	}
	return 0
}

// runNemesis executes one nemesis pass (internal/nemesis): a real TCP
// cluster of persistent replicas under a seeded chaos schedule, with the
// recorded history always checked for linearizability. A non-empty fault
// script overrides the generated schedule.
func runNemesis(n, groups, writers, readers, ops, regs int, seed int64, byz int, faults, out, traceOut string) int {
	cfg := nemesis.Config{
		N: n, Groups: groups, Writers: writers, Readers: readers,
		OpsPerClient: ops, Registers: regs, Seed: seed, Byzantine: byz,
	}
	if faults != "" {
		sched, err := failure.Parse(faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "abd-sim: %v\n", err)
			return 2
		}
		if err := nemesis.ValidateSchedule(sched, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "abd-sim: %v\n", err)
			return 2
		}
		cfg.Schedule = sched
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	start := time.Now()
	res, err := nemesis.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "abd-sim: nemesis: %v\n", err)
		return 1
	}
	elapsed := time.Since(start)

	if res.Shards > 1 {
		fmt.Printf("abd-sim: nemesis seed %d: %d groups x %d replicas: %d ok, %d pending/timed-out ops in %v\n",
			seed, res.Shards, n, res.Ops, res.Failed, elapsed.Round(time.Millisecond))
	} else {
		fmt.Printf("abd-sim: nemesis seed %d: %d ok, %d pending/timed-out ops in %v\n",
			seed, res.Ops, res.Failed, elapsed.Round(time.Millisecond))
	}
	fmt.Printf("abd-sim: schedule: %s\n", res.Schedule)
	fmt.Printf("abd-sim: chaos: %+v\n", res.Chaos)
	fmt.Printf("abd-sim: transport: dials=%d dial_failures=%d write_failures=%d write_timeouts=%d "+
		"suppressed=%d breaker_opens=%d breaker_probes=%d breaker_closes=%d resets=%d\n",
		res.Transport.Dials, res.Transport.DialFailures, res.Transport.WriteFailures,
		res.Transport.WriteTimeouts, res.Transport.SuppressedSends, res.Transport.BreakerOpens,
		res.Transport.BreakerProbes, res.Transport.BreakerCloses, res.Transport.Resets)
	fmt.Printf("abd-sim: client: phases=%d retransmits=%d msgs_sent=%d\n",
		res.Client.Phases, res.Client.Retransmits, res.Client.MsgsSent)
	if res.Byzantine > 0 {
		fmt.Printf("abd-sim: byzantine (f=%d): lies=%d muted=%d suspect_rejects=%d confirm_rounds=%d mask_retries=%d\n",
			res.Byzantine, res.Lies, res.Muted,
			res.Client.ByzRejects, res.Client.ByzConfirms, res.Client.MaskRetries)
	}
	fmt.Printf("abd-sim: traces: %d spans (%d dropped), stitch %d/%d (%.1f%%) across %d traces\n",
		len(res.Spans), res.SpansDropped, res.Stitch.Stitched, res.Stitch.Total,
		100*res.Stitch.Ratio(), res.Stitch.Traces)

	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "abd-sim: %v\n", err)
			return 1
		}
		j := obs.NewJSONL(f)
		for _, s := range res.Spans {
			j.Emit(s)
		}
		if err := j.Close(); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "abd-sim: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "abd-sim: %v\n", err)
			return 1
		}
		fmt.Printf("abd-sim: traces (%d spans) written to %s\n", len(res.Spans), traceOut)
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "abd-sim: %v\n", err)
			return 1
		}
		if err := history.WriteJSON(f, res.History); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "abd-sim: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "abd-sim: %v\n", err)
			return 1
		}
		fmt.Printf("abd-sim: history (%d ops) written to %s\n", len(res.History), out)
	}

	if res.Shards > 1 {
		// Per-register shard placement and verdict: the sharded guarantee is
		// per register, so show exactly what was checked and where it lived.
		regNames := make([]string, 0, len(res.Results))
		for reg := range res.Results {
			regNames = append(regNames, reg)
		}
		sort.Strings(regNames)
		for _, reg := range regNames {
			fmt.Printf("abd-sim: register %-8q group %d: %s\n",
				reg, res.RegisterShard[reg], res.Results[reg].Outcome)
		}
	}
	fmt.Printf("abd-sim: history of %d ops over %d register(s) is %s\n",
		len(res.History), len(res.Results), res.Outcome)
	if res.Outcome == lincheck.NotLinearizable {
		for reg, r := range res.Results {
			if r.Outcome == lincheck.NotLinearizable {
				fmt.Printf("abd-sim: register %q NOT linearizable\n", reg)
			}
		}
		return 1
	}
	return 0
}
