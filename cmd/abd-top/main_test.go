package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/health"
)

// statusServer serves a fixed health.Status the way abd-node's /status
// does, and returns the host:port abd-top's -nodes flag takes.
func statusServer(t *testing.T, st health.Status) string {
	t.Helper()
	mux := httptest.NewServer(health.Handler(func() health.Status { return st }))
	t.Cleanup(mux.Close)
	return strings.TrimPrefix(mux.URL, "http://")
}

// TestRunOnceRendersClusterView polls three synthetic nodes — two caught
// up, one straggling, plus one dead address — and checks the single-frame
// mode assembles the cross-replica picture no individual node has: the
// straggler flagged against the quorum-confirmed watermark, hot keys
// merged across sketches, per-node SLO state, and a nonzero node count in
// the header.
func TestRunOnceRendersClusterView(t *testing.T) {
	mk := func(node, seq int64) health.Status {
		return health.Status{
			Node:          node,
			UptimeSeconds: 12,
			HotKeys:       []health.HotKey{{Key: "x", Count: 50}, {Key: "y", Count: 5}},
			HotKeyTotal:   60,
			Watermarks:    &health.ReplicaTags{Node: node, Tags: map[string]health.Tag{"x": {Seq: seq}}},
			SLO: &health.SLOStatus{Name: "client-ops", Objective: 0.99,
				Windows: []health.WindowBurn{{WindowSeconds: 60, Burn: 0.5}}},
			Breakers: &health.BreakerStatus{Open: 1, Opens: 3, Closes: 2},
		}
	}
	fast0, fast1 := mk(0, 7), mk(1, 7)
	slow := mk(2, 2)
	slow.SLO.PageActive = true
	slow.Alerts = []health.Alert{{At: time.Unix(0, 0), SLO: "client-ops", Severity: health.SeverityPage, Burn: 11}}

	nodes := strings.Join([]string{
		statusServer(t, fast0),
		statusServer(t, fast1),
		statusServer(t, slow),
		"127.0.0.1:1", // nothing listens here: must render as DOWN, not abort
	}, ",")

	// -quorum 2 is the replica group's real majority (3 replicas); the
	// fourth polled address is a dead observer that must not shift it.
	var buf bytes.Buffer
	if code := run([]string{"-nodes", nodes, "-quorum", "2", "-once"}, &buf); code != 0 {
		t.Fatalf("run exited %d:\n%s", code, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"3/4 nodes up",
		"quorum=2",
		"replica 2",
		"BEHIND on 1 regs, worst seq lag 5",
		"confirmed seq 7",
		"PAGE",
		"1 open",
		"150 ops (>= 150)", // 3 sketches of x=50 merged
		"(180 tracked ops, merged over 3 nodes)",
		"DOWN",
		"alerts:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	// -once must not emit terminal control sequences — it is the mode CI
	// pipes into assertions.
	if strings.Contains(out, "\x1b[") {
		t.Error("-once frame contains ANSI escapes")
	}
}

// TestRunOnceAllNodesDown: when nothing answers, the single frame renders
// every node DOWN and the exit code is nonzero so scripts notice.
func TestRunOnceAllNodesDown(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-nodes", "127.0.0.1:1", "-once"}, &buf); code == 0 {
		t.Fatalf("run succeeded with no reachable node:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "DOWN") {
		t.Errorf("frame does not mark the node DOWN:\n%s", buf.String())
	}
}

// TestRunRejectsEmptyNodes: -nodes is mandatory.
func TestRunRejectsEmptyNodes(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-once"}, &buf); code != 2 {
		t.Fatalf("run without -nodes exited %d, want 2", code)
	}
}
