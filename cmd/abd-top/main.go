// Command abd-top is a live terminal view over a replica group's /status
// endpoints (served by abd-node next to /metrics). Each refresh it polls
// every node, merges the per-node reports into one cluster picture, and
// renders: node liveness and SLO burn state, cross-replica lag computed
// from the polled tag watermarks (each node only knows its own replica;
// abd-top is the one who sees them all, so it runs health.ComputeLag),
// the fleet-merged hot keys, circuit-breaker counters, and any burn-rate
// alerts the nodes raised.
//
// Usage:
//
//	abd-top -nodes 127.0.0.1:9100,127.0.0.1:9101,127.0.0.1:9102 \
//	        [-interval 1s] [-quorum N] [-regs 8] [-once]
//
// -quorum defaults to a majority of the polled nodes, matching the ABD
// read/write quorum of a group that size. -once prints a single frame and
// exits (nonzero when no node answered) — the scriptable mode CI uses.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/health"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("abd-top", flag.ContinueOnError)
	var (
		nodes    = fs.String("nodes", "", "comma-separated node status addresses (host:port,...)")
		interval = fs.Duration("interval", time.Second, "refresh period")
		quorum   = fs.Int("quorum", 0, "quorum size for the lag watermark (0 = majority of polled nodes)")
		topRegs  = fs.Int("regs", 8, "registers to detail in the lag table")
		once     = fs.Bool("once", false, "print one frame and exit (nonzero when no node answers)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	addrs := splitNodes(*nodes)
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "abd-top: -nodes is required (host:port,host:port,...)")
		return 2
	}
	q := *quorum
	if q <= 0 {
		q = len(addrs)/2 + 1
	}

	client := &http.Client{Timeout: 2 * time.Second}
	for {
		frame := poll(client, addrs, q, *topRegs)
		if !*once {
			fmt.Fprint(w, "\x1b[H\x1b[2J") // home + clear: refresh in place
		}
		render(w, frame)
		if *once {
			if frame.up == 0 {
				return 1
			}
			return 0
		}
		time.Sleep(*interval)
	}
}

func splitNodes(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// nodeView is one polled node: its address, the decoded status, or the
// error that kept it out of this frame.
type nodeView struct {
	addr string
	err  error
	st   health.Status
}

// frame is one fully-assembled refresh.
type frame struct {
	at    time.Time
	nodes []nodeView
	up    int
	// lag is computed here from the reachable nodes' watermarks — the
	// cluster-wide view no single node has.
	lag health.LagReport
	// hot is the fleet merge of every node's top-k sketch.
	hot      []health.HotKey
	hotTotal int64
	alerts   []health.Alert
	// byz sums the nodes' Byzantine read-validation counters; byzNodes is
	// how many nodes reported one (0 = the fleet runs without validation
	// and the section is omitted).
	byz      health.ByzStatus
	byzNodes int
}

func poll(client *http.Client, addrs []string, quorum, topRegs int) frame {
	fr := frame{at: time.Now(), nodes: make([]nodeView, len(addrs))}
	var reports []health.ReplicaTags
	var sketches [][]health.HotKey
	for i, addr := range addrs {
		nv := nodeView{addr: addr}
		nv.st, nv.err = fetchStatus(client, addr)
		fr.nodes[i] = nv
		if nv.err != nil {
			continue
		}
		fr.up++
		if nv.st.Watermarks != nil {
			reports = append(reports, *nv.st.Watermarks)
		}
		sketches = append(sketches, nv.st.HotKeys)
		fr.hotTotal += nv.st.HotKeyTotal
		fr.alerts = append(fr.alerts, nv.st.Alerts...)
		if b := nv.st.Byzantine; b != nil {
			fr.byzNodes++
			if b.ToleratedFaults > fr.byz.ToleratedFaults {
				fr.byz.ToleratedFaults = b.ToleratedFaults
			}
			fr.byz.SuspectRejects += b.SuspectRejects
			fr.byz.ConfirmRounds += b.ConfirmRounds
			fr.byz.MaskRetries += b.MaskRetries
		}
	}
	fr.lag = health.ComputeLag(reports, quorum, topRegs)
	fr.hot = health.MergeHotKeys(10, sketches...)
	return fr
}

func fetchStatus(client *http.Client, addr string) (health.Status, error) {
	var st health.Status
	resp, err := client.Get("http://" + addr + "/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("GET /status: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("bad /status body: %w", err)
	}
	return st, nil
}

func render(w io.Writer, fr frame) {
	fmt.Fprintf(w, "abd-top  %s  %d/%d nodes up  quorum=%d\n",
		fr.at.Format("15:04:05"), fr.up, len(fr.nodes), fr.lag.Quorum)

	fmt.Fprintf(w, "\n  %-22s %6s %8s %10s %6s %8s %7s\n",
		"node", "id", "uptime", "burn", "slo", "breakers", "alerts")
	for _, nv := range fr.nodes {
		if nv.err != nil {
			fmt.Fprintf(w, "  %-22s DOWN (%v)\n", nv.addr, nv.err)
			continue
		}
		burn, state := "-", "ok"
		if s := nv.st.SLO; s != nil {
			if len(s.Windows) > 0 {
				burn = fmt.Sprintf("%.2f", s.Windows[0].Burn)
			}
			switch {
			case s.PageActive:
				state = "PAGE"
			case s.TicketActive:
				state = "ticket"
			}
		}
		brk := "-"
		if b := nv.st.Breakers; b != nil {
			brk = fmt.Sprintf("%d open", b.Open)
		}
		fmt.Fprintf(w, "  %-22s %6d %7.0fs %10s %6s %8s %7d\n",
			nv.addr, nv.st.Node, nv.st.UptimeSeconds, burn, state, brk, len(nv.st.Alerts))
	}

	fmt.Fprintf(w, "\nreplica lag (vs quorum-confirmed watermark):\n")
	if len(fr.lag.Replicas) == 0 {
		fmt.Fprintln(w, "  no watermark reports")
	}
	for _, rl := range fr.lag.Replicas {
		state := "caught up"
		if rl.Behind > 0 {
			state = fmt.Sprintf("BEHIND on %d regs, worst seq lag %d", rl.Behind, rl.MaxSeqLag)
		}
		fmt.Fprintf(w, "  replica %-4d %4d regs sampled  %s\n", rl.Node, rl.Sampled, state)
	}
	for _, rg := range fr.lag.Registers {
		if len(rg.Behind) == 0 {
			continue
		}
		fmt.Fprintf(w, "    %-16s confirmed seq %-6d behind: %v\n", rg.Reg, rg.Confirmed.Seq, rg.Behind)
	}

	fmt.Fprintf(w, "\nhot keys (%d tracked ops, merged over %d nodes):\n", fr.hotTotal, fr.up)
	if len(fr.hot) == 0 {
		fmt.Fprintln(w, "  none yet")
	}
	for _, hk := range fr.hot {
		// Count-Err is the sketch's guaranteed lower bound.
		fmt.Fprintf(w, "  %-20s %8d ops (>= %d)\n", hk.Key, hk.Count, hk.Count-hk.Err)
	}

	if fr.byzNodes > 0 {
		state := "no lies suspected"
		if fr.byz.SuspectRejects > 0 {
			state = "LIES REJECTED"
		}
		fmt.Fprintf(w, "\nbyzantine validation (f=%d, %d nodes): %s\n",
			fr.byz.ToleratedFaults, fr.byzNodes, state)
		fmt.Fprintf(w, "  suspect rejects %d  confirm rounds %d  mask retries %d\n",
			fr.byz.SuspectRejects, fr.byz.ConfirmRounds, fr.byz.MaskRetries)
	}

	if len(fr.alerts) > 0 {
		fmt.Fprintf(w, "\nalerts:\n")
		for _, a := range fr.alerts {
			fmt.Fprintf(w, "  %s  %-6s %s burn=%.2f\n",
				a.At.Format("15:04:05"), a.Severity, a.SLO, a.Burn)
		}
	}
}
